#include "oracle/fork_pre_execute.hh"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "common/logging.hh"
#include "common/stats_util.hh"
#include "obs/context.hh"
#include "oracle/snapshot_pool.hh"
#include "sim/parallel_executor.hh"

namespace pcstall::oracle
{

namespace
{

/** Ordering of flattened wave observations: wave identity first, then
 *  sample index. Grouping by the first three fields reproduces the
 *  legacy std::map<(cu, slot, startPcAddr)> iteration order, and the
 *  sampleIndex tiebreak reproduces the legacy per-group push order
 *  (points were appended as k ascended), so the regression inputs -
 *  and therefore the fitted doubles - are bit-for-bit identical. */
bool
waveSampleLess(const WaveSample &a, const WaveSample &b)
{
    return std::tie(a.cu, a.slot, a.startPcAddr, a.sampleIndex) <
           std::tie(b.cu, b.slot, b.startPcAddr, b.sampleIndex);
}

bool
sameWave(const WaveSample &a, const WaveSample &b)
{
    return a.cu == b.cu && a.slot == b.slot &&
           a.startPcAddr == b.startPcAddr;
}

/** Per-sample work shared by the copy, pooled and parallel paths:
 *  pin each domain to its sample frequency, pre-execute the epoch,
 *  and harvest domain instruction counts plus wave observations. */
void
runOneSample(std::size_t k, gpu::GpuChip &sample,
             gpu::EpochRecord &record, std::vector<WaveSample> &waves,
             const dvfs::DomainMap &domains, Tick start, Tick epoch_len,
             const SweepOptions &options, std::size_t num_states,
             const SnapshotPool::Scratch &scratch,
             dvfs::AccurateEstimates &est)
{
    const std::uint32_t num_domains = domains.numDomains();

    // Sampling processes transition instantaneously: the paper's
    // methodology measures the work segment itself, not the
    // IVR settle time.
    for (std::uint32_t d = 0; d < num_domains; ++d) {
        const std::size_t state = options.shuffle
            ? (k + d) % num_states : k;
        const Freq freq = scratch.stateFreq[state];
        const std::uint32_t first = domains.firstCu(d);
        for (std::uint32_t cu = first;
             cu < first + domains.cusPerDomain(); ++cu) {
            sample.setCuFrequency(cu, freq, 0);
        }
    }

    sample.runUntil(start + epoch_len);
    sample.harvestEpoch(start, record);

    // Each (d, state) cell is written by exactly one sample (the
    // shuffle is a bijection per domain), so concurrent samples touch
    // disjoint elements of the pre-sized estimate matrix.
    for (std::uint32_t d = 0; d < num_domains; ++d) {
        const std::size_t state = options.shuffle
            ? (k + d) % num_states : k;
        double committed = 0.0;
        const std::uint32_t first = domains.firstCu(d);
        for (std::uint32_t cu = first;
             cu < first + domains.cusPerDomain(); ++cu) {
            committed += static_cast<double>(record.cus[cu].committed);
        }
        est.domainInstr[d][state] = committed;
    }

    if (options.waveLevel) {
        waves.clear();
        if (waves.capacity() < record.waves.size())
            waves.reserve(record.waves.size());
        for (const gpu::WaveEpochRecord &w : record.waves) {
            if (!w.active)
                continue;
            const std::size_t state = options.shuffle
                ? (k + domains.domainOf(w.cu)) % num_states : k;
            WaveSample point;
            point.cu = w.cu;
            point.slot = w.slot;
            point.startPcAddr = w.startPcAddr;
            point.ageRank = w.ageRank;
            point.sampleIndex = static_cast<std::uint32_t>(k);
            point.freqGHz = scratch.stateGHz[state];
            point.instr = static_cast<double>(w.committed);
            waves.push_back(point);
        }
    }
}

/** Merge the per-sample wave observations into per-wave linear fits.
 *  Runs on the calling thread after all samples complete; the sort
 *  gives the same visit order as the legacy map-based reduction. */
void
reduceWaveFits(SnapshotPool &pool, std::size_t num_states,
               SnapshotPool::Scratch &scratch,
               dvfs::AccurateEstimates &est)
{
    std::vector<WaveSample> &merged = scratch.merged;
    merged.clear();
    std::size_t total = 0;
    for (std::size_t k = 0; k < num_states; ++k)
        total += pool.waves(k).size();
    if (merged.capacity() < total)
        merged.reserve(total);
    for (std::size_t k = 0; k < num_states; ++k) {
        const std::vector<WaveSample> &waves = pool.waves(k);
        merged.insert(merged.end(), waves.begin(), waves.end());
    }
    std::sort(merged.begin(), merged.end(), waveSampleLess);

    // Exact reservation: count groups with enough points to fit.
    std::size_t groups = 0;
    for (std::size_t i = 0; i < merged.size();) {
        std::size_t j = i + 1;
        while (j < merged.size() && sameWave(merged[i], merged[j]))
            ++j;
        if (j - i >= 3)
            ++groups;
        i = j;
    }
    if (est.waves.capacity() < groups)
        est.waves.reserve(groups);

    std::vector<double> &freqs = scratch.fitFreqs;
    std::vector<double> &instr = scratch.fitInstr;
    for (std::size_t i = 0; i < merged.size();) {
        std::size_t j = i + 1;
        while (j < merged.size() && sameWave(merged[i], merged[j]))
            ++j;
        if (j - i >= 3) {
            freqs.clear();
            instr.clear();
            if (freqs.capacity() < j - i) {
                freqs.reserve(j - i);
                instr.reserve(j - i);
            }
            for (std::size_t p = i; p < j; ++p) {
                freqs.push_back(merged[p].freqGHz);
                instr.push_back(merged[p].instr);
            }
            const LinearFit fit = linearFit(freqs, instr);
            dvfs::AccurateEstimates::WaveSens ws;
            ws.cu = merged[i].cu;
            ws.slot = merged[i].slot;
            ws.startPcAddr = merged[i].startPcAddr;
            ws.sensitivity = fit.slope;
            ws.level = std::max(fit.intercept, 0.0);
            // Legacy last-write-wins: the highest sample index that
            // observed the wave supplies the age rank.
            ws.ageRank = merged[j - 1].ageRank;
            est.waves.push_back(ws);
        }
        i = j;
    }
}

} // namespace

dvfs::AccurateEstimates
forkPreExecuteSweep(const gpu::GpuChip &chip,
                    const dvfs::DomainMap &domains,
                    const power::VfTable &table, Tick epoch_len,
                    const SweepOptions &options)
{
    const std::size_t num_states = table.numStates();
    const Tick start = chip.now();

    obs::Registry *registry = nullptr;
    obs::Histogram *fork_wall = nullptr;
    if (obs::metricsEnabled()) {
        registry = &obs::reg();
        registry->counter("oracle.sweeps").add(1);
        registry->counter("oracle.forks").add(num_states);
        fork_wall = &registry->histogram("oracle.fork_wall_ns",
                                         obs::MetricKind::Timing);
    }

    // Per-sample restore verification: always on in debug builds and
    // in builds configured with -DPCSTALL_VERIFY_SNAPSHOTS=ON (the
    // sanitizer CI); opt-in per sweep otherwise. Fingerprinting every
    // restored chip costs more than the restore itself, so release
    // builds default it off.
#if defined(PCSTALL_VERIFY_SNAPSHOTS)
    const bool verify = true;
#elif defined(NDEBUG)
    const bool verify = options.verifyRestore;
#else
    const bool verify = true;
#endif
    const std::uint64_t base_fp =
        verify ? chip.stateFingerprint() : 0;

    dvfs::AccurateEstimates est;
    est.domainInstr.assign(domains.numDomains(),
                           std::vector<double>(num_states, 0.0));

    // Copy mode still routes records/waves/scratch through a pool so
    // every path shares one sample body; only the chip handling (deep
    // copy versus pooled restore) differs.
    SnapshotPool local_pool;
    const bool pooled = options.pool != nullptr;
    SnapshotPool &pool = pooled ? *options.pool : local_pool;
    if (pooled) {
        // Pre-warm chipless slots (first sweep) so the possibly
        // parallel restore phase never copy-constructs, then take the
        // base chip's dirt so unbroken slots can delta-restore.
        pool.ensureSlots(num_states, chip);
        pool.beginSweep(chip);
    } else {
        pool.ensureSlots(num_states);
    }

    SnapshotPool::Scratch &scratch = pool.scratch();
    scratch.stateFreq.resize(num_states);
    scratch.stateGHz.resize(num_states);
    for (std::size_t s = 0; s < num_states; ++s) {
        scratch.stateFreq[s] = table.state(s).freq;
        scratch.stateGHz[s] = freqGHzD(scratch.stateFreq[s]);
    }
    scratch.sampleWallNs.resize(num_states);

    auto run_sample = [&](std::size_t k) {
        const std::int64_t fork_t0 = obs::nowNsIfEnabled();
        gpu::EpochRecord &record = pool.record(k);
        std::vector<WaveSample> &waves = pool.waves(k);
        if (pooled) {
            gpu::GpuChip &sample = pool.restore(k, chip);
            if (verify) {
                panicIf(sample.stateFingerprint() != base_fp,
                        "snapshot pool restore diverged from the "
                        "source chip");
            }
            runOneSample(k, sample, record, waves, domains, start,
                         epoch_len, options, num_states, scratch, est);
        } else {
            gpu::GpuChip sample = chip;
            runOneSample(k, sample, record, waves, domains, start,
                         epoch_len, options, num_states, scratch, est);
        }
        scratch.sampleWallNs[k] =
            fork_t0 >= 0 ? obs::nowNsIfEnabled() - fork_t0 : -1;
    };

    sim::ParallelExecutor *exec =
        pooled ? options.executor : nullptr;
    if (exec && exec->threadCount() > 1 && num_states > 1) {
        exec->forEach(num_states, run_sample);
    } else {
        for (std::size_t k = 0; k < num_states; ++k)
            run_sample(k);
    }

    // Metrics are recorded after the batch, in sample order, so the
    // histogram contents do not depend on execution interleaving.
    if (fork_wall) {
        for (std::size_t k = 0; k < num_states; ++k) {
            const std::int64_t wall = scratch.sampleWallNs[k];
            if (wall < 0)
                continue;
            fork_wall->record(wall);
            // Keyed by the sample's base state (domain 0's state; with
            // shuffle, domain d runs state (k + d) mod S this sample).
            char name[40];
            std::snprintf(name, sizeof(name),
                          "oracle.fork_wall_ns.s%02zu", k);
            registry->histogram(name, obs::MetricKind::Timing)
                .record(wall);
        }
    }

    if (options.waveLevel)
        reduceWaveFits(pool, num_states, scratch, est);

    if (verify) {
        panicIf(chip.stateFingerprint() != base_fp,
                "forkPreExecuteSweep mutated its input chip");
    }

    return est;
}

DomainSensitivity
domainSensitivity(const dvfs::AccurateEstimates &est,
                  const power::VfTable &table, std::uint32_t domain)
{
    panicIf(domain >= est.domainInstr.size(),
            "domainSensitivity: bad domain");
    std::vector<double> freqs;
    std::vector<double> instr;
    for (std::size_t s = 0; s < table.numStates(); ++s) {
        freqs.push_back(freqGHzD(table.state(s).freq));
        instr.push_back(est.domainInstr[domain][s]);
    }
    const LinearFit fit = linearFit(freqs, instr);
    DomainSensitivity out;
    out.sensitivity = fit.slope;
    out.intercept = fit.intercept;
    out.r2 = fit.r2;
    return out;
}

} // namespace pcstall::oracle
