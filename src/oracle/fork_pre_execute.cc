#include "oracle/fork_pre_execute.hh"

#include <cstdio>
#include <map>
#include <tuple>

#include "common/logging.hh"
#include "common/stats_util.hh"
#include "obs/context.hh"

namespace pcstall::oracle
{

dvfs::AccurateEstimates
forkPreExecuteSweep(const gpu::GpuChip &chip,
                    const dvfs::DomainMap &domains,
                    const power::VfTable &table, Tick epoch_len,
                    const SweepOptions &options)
{
    const std::size_t num_states = table.numStates();
    const std::uint32_t num_domains = domains.numDomains();
    const Tick start = chip.now();

    obs::Registry &registry = obs::reg();
    registry.counter("oracle.sweeps").add(1);
    registry.counter("oracle.forks").add(num_states);
    obs::Histogram &fork_wall = registry.histogram(
        "oracle.fork_wall_ns", obs::MetricKind::Timing);

    dvfs::AccurateEstimates est;
    est.domainInstr.assign(num_domains,
                           std::vector<double>(num_states, 0.0));

    // (cu, slot, startPcAddr) -> sampled (f_GHz, committed) points.
    using WaveKey = std::tuple<std::uint32_t, std::uint32_t,
                               std::uint64_t>;
    struct WavePoints
    {
        std::vector<double> freqs;
        std::vector<double> instr;
        std::uint32_t ageRank = 0;
    };
    std::map<WaveKey, WavePoints> wave_points;

    for (std::size_t k = 0; k < num_states; ++k) {
        const std::int64_t fork_t0 = obs::nowNsIfEnabled();
        gpu::GpuChip sample = chip;
        // Sampling processes transition instantaneously: the paper's
        // methodology measures the work segment itself, not the
        // IVR settle time.
        for (std::uint32_t d = 0; d < num_domains; ++d) {
            const std::size_t state = options.shuffle
                ? (k + d) % num_states : k;
            const Freq freq = table.state(state).freq;
            const std::uint32_t first = domains.firstCu(d);
            for (std::uint32_t cu = first;
                 cu < first + domains.cusPerDomain(); ++cu) {
                sample.setCuFrequency(cu, freq, 0);
            }
        }

        sample.runUntil(start + epoch_len);
        const gpu::EpochRecord record = sample.harvestEpoch(start);

        for (std::uint32_t d = 0; d < num_domains; ++d) {
            const std::size_t state = options.shuffle
                ? (k + d) % num_states : k;
            double committed = 0.0;
            const std::uint32_t first = domains.firstCu(d);
            for (std::uint32_t cu = first;
                 cu < first + domains.cusPerDomain(); ++cu) {
                committed += static_cast<double>(
                    record.cus[cu].committed);
            }
            est.domainInstr[d][state] = committed;
        }

        if (options.waveLevel) {
            for (const gpu::WaveEpochRecord &w : record.waves) {
                if (!w.active)
                    continue;
                const std::size_t state = options.shuffle
                    ? (k + domains.domainOf(w.cu)) % num_states : k;
                WavePoints &pts =
                    wave_points[{w.cu, w.slot, w.startPcAddr}];
                pts.freqs.push_back(freqGHzD(table.state(state).freq));
                pts.instr.push_back(static_cast<double>(w.committed));
                pts.ageRank = w.ageRank;
            }
        }

        if (fork_t0 >= 0) {
            // Keyed by the sample's base state (domain 0's state; with
            // shuffle, domain d runs state (k + d) mod S this sample).
            char name[40];
            std::snprintf(name, sizeof(name),
                          "oracle.fork_wall_ns.s%02zu", k);
            obs::recordSinceNs(fork_wall, fork_t0);
            obs::recordSinceNs(
                registry.histogram(name, obs::MetricKind::Timing),
                fork_t0);
        }
    }

    if (options.waveLevel) {
        for (const auto &[key, pts] : wave_points) {
            if (pts.freqs.size() < 3)
                continue;
            const LinearFit fit = linearFit(pts.freqs, pts.instr);
            dvfs::AccurateEstimates::WaveSens ws;
            ws.cu = std::get<0>(key);
            ws.slot = std::get<1>(key);
            ws.startPcAddr = std::get<2>(key);
            ws.sensitivity = fit.slope;
            ws.level = std::max(fit.intercept, 0.0);
            ws.ageRank = pts.ageRank;
            est.waves.push_back(ws);
        }
    }

    return est;
}

DomainSensitivity
domainSensitivity(const dvfs::AccurateEstimates &est,
                  const power::VfTable &table, std::uint32_t domain)
{
    panicIf(domain >= est.domainInstr.size(),
            "domainSensitivity: bad domain");
    std::vector<double> freqs;
    std::vector<double> instr;
    for (std::size_t s = 0; s < table.numStates(); ++s) {
        freqs.push_back(freqGHzD(table.state(s).freq));
        instr.push_back(est.domainInstr[domain][s]);
    }
    const LinearFit fit = linearFit(freqs, instr);
    DomainSensitivity out;
    out.sensitivity = fit.slope;
    out.intercept = fit.intercept;
    out.r2 = fit.r2;
    return out;
}

} // namespace pcstall::oracle
