/**
 * @file
 * Pooled simulator snapshots for the fork-pre-execute oracle.
 *
 * The paper's methodology (Section 5.1) re-executes every upcoming
 * epoch once per V/f state. Naively that is one deep copy of the
 * whole GpuChip per sample per epoch boundary - the dominant
 * allocation cost of every ACCPC/ORACLE run. A SnapshotPool instead
 * keeps one reusable scratch chip per sample slot and *restores* it
 * by copy assignment: vectors assign element-wise into their existing
 * allocations, so after the first epoch the pool reaches a capacity
 * high-water mark and restores stop touching the heap entirely
 * (Scarab-style cheap per-interval checkpointing).
 *
 * The pool also owns the per-sample harvest records, the per-sample
 * wave-observation buffers and the reduction scratch, so a steady-
 * state `forkPreExecuteSweep` allocates only its returned estimates.
 *
 * A pool is single-owner state: share one per experiment run (it is
 * not thread-safe across concurrent *sweeps*), but the per-slot
 * accessors are safe to use from concurrent per-sample tasks as long
 * as each task touches only its own slot index (that is exactly what
 * the in-cell parallel sweep does).
 */

#ifndef PCSTALL_ORACLE_SNAPSHOT_POOL_HH
#define PCSTALL_ORACLE_SNAPSHOT_POOL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "gpu/epoch_stats.hh"
#include "gpu/gpu_chip.hh"

namespace pcstall::oracle
{

/** One wave-level observation from one V/f sample (reduction input). */
struct WaveSample
{
    std::uint32_t cu = 0;
    std::uint32_t slot = 0;
    /** PC byte address the wave started the sampled epoch at. */
    std::uint64_t startPcAddr = 0;
    /** Age rank at the start of the sampled epoch. */
    std::uint32_t ageRank = 0;
    /** Sample index k the point was measured in (reduction order). */
    std::uint32_t sampleIndex = 0;
    /** Frequency the wave's domain ran at during the sample, in GHz. */
    double freqGHz = 0.0;
    /** Instructions the wave committed during the sample. */
    double instr = 0.0;
};

/** Reusable scratch chips + reduction buffers for oracle sweeps. */
class SnapshotPool
{
  public:
    /**
     * Restore a slot's scratch chip to an exact copy of a base chip.
     * The first use of a slot copy-constructs its chip; every later
     * use copy-assigns into the existing storage, reusing all vector
     * capacity. Safe to call concurrently for distinct slot indices.
     *
     * @param i     Sample slot index; must be < slotCount().
     * @param base  Chip state to restore the scratch chip to.
     * @return The slot's scratch chip, equal to @p base.
     */
    gpu::GpuChip &restore(std::size_t i, const gpu::GpuChip &base);

    /**
     * Reusable harvest record for one sample slot.
     *
     * @param i  Sample slot index; must be < slotCount().
     * @return The slot's epoch record (contents are stale until the
     *         sweep harvests into it).
     */
    gpu::EpochRecord &record(std::size_t i);

    /**
     * Reusable wave-observation buffer for one sample slot.
     *
     * @param i  Sample slot index; must be < slotCount().
     * @return The slot's wave-sample buffer (cleared by the sweep
     *         before refilling; capacity persists across epochs).
     */
    std::vector<WaveSample> &waves(std::size_t i);

    /**
     * Grow the pool to at least @p n sample slots. Must be called (by
     * the sweep, before any parallel phase) so that the concurrent
     * per-slot accessors never reallocate the slot array.
     *
     * @param n  Minimum number of sample slots to provide.
     */
    void ensureSlots(std::size_t n);

    /** @return Number of sample slots currently allocated. */
    std::size_t slotCount() const { return slots_.size(); }

    /** Drop every scratch chip and buffer (frees the memory). */
    void clear();

    /** Reduction scratch shared across one sweep (and reused by the
     *  next one). Owned here so sweeps are allocation-free in steady
     *  state; only forkPreExecuteSweep should touch it. */
    struct Scratch
    {
        /** All samples' wave observations, flattened for sorting. */
        std::vector<WaveSample> merged;
        /** Regression inputs for one wave group. */
        std::vector<double> fitFreqs;
        std::vector<double> fitInstr;
        /** Per-state frequency cache (hoisted VfTable lookups). */
        std::vector<Freq> stateFreq;
        std::vector<double> stateGHz;
        /** Per-sample wall time in ns (-1 = metrics disabled). */
        std::vector<std::int64_t> sampleWallNs;
    };

    Scratch &scratch() { return scratch_; }

  private:
    struct Slot
    {
        /** Deferred: GpuChip has no default constructor, so the chip
         *  is created on first restore() and reused afterwards. */
        std::unique_ptr<gpu::GpuChip> chip;
        gpu::EpochRecord record;
        std::vector<WaveSample> waves;
    };

    std::vector<Slot> slots_;
    Scratch scratch_;
};

} // namespace pcstall::oracle

#endif // PCSTALL_ORACLE_SNAPSHOT_POOL_HH
