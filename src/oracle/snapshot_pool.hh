/**
 * @file
 * Pooled simulator snapshots for the fork-pre-execute oracle.
 *
 * The paper's methodology (Section 5.1) re-executes every upcoming
 * epoch once per V/f state. Naively that is one deep copy of the
 * whole GpuChip per sample per epoch boundary - the dominant
 * allocation cost of every ACCPC/ORACLE run. A SnapshotPool instead
 * keeps one reusable scratch chip per sample slot and *restores* it
 * by copy assignment: vectors assign element-wise into their existing
 * allocations, so after the first epoch the pool reaches a capacity
 * high-water mark and restores stop touching the heap entirely
 * (Scarab-style cheap per-interval checkpointing).
 *
 * On top of that, the pool supports dirty-region *delta* restores. A
 * pre-executed epoch touches a small fraction of the chip (a few wave
 * slots per CU, a few hundred cache sets), so copying the whole chip
 * back is mostly redundant. Every GpuChip tracks which regions
 * changed since its last snapshot take; beginSweep() takes the base
 * chip's accumulated dirt and folds it into each slot's pending mask,
 * and restore() then copies only the union of (what the slot's chip
 * touched during its last sample) and (what the base chip has done
 * since the slot was last synced). Any break in the chain - a new or
 * different base chip, a missed beginSweep, untaken base dirt - makes
 * the affected slot fall back to a full copy-assign restore, so the
 * delta path is an optimization with a proof obligation, not a new
 * semantics: delta and full restores produce byte-identical chips
 * (asserted by tests/test_snapshot_delta.cc and the perf suite).
 *
 * The pool also owns the per-sample harvest records, the per-sample
 * wave-observation buffers and the reduction scratch, so a steady-
 * state `forkPreExecuteSweep` allocates only its returned estimates.
 *
 * A pool is single-owner state: share one per experiment run (it is
 * not thread-safe across concurrent *sweeps*), but the per-slot
 * accessors are safe to use from concurrent per-sample tasks as long
 * as each task touches only its own slot index (that is exactly what
 * the in-cell parallel sweep does). beginSweep() and ensureSlots()
 * must be called from the sweep's serial prologue.
 */

#ifndef PCSTALL_ORACLE_SNAPSHOT_POOL_HH
#define PCSTALL_ORACLE_SNAPSHOT_POOL_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "gpu/epoch_stats.hh"
#include "gpu/gpu_chip.hh"

namespace pcstall::oracle
{

/** One wave-level observation from one V/f sample (reduction input). */
struct WaveSample
{
    std::uint32_t cu = 0;
    std::uint32_t slot = 0;
    /** PC byte address the wave started the sampled epoch at. */
    std::uint64_t startPcAddr = 0;
    /** Age rank at the start of the sampled epoch. */
    std::uint32_t ageRank = 0;
    /** Sample index k the point was measured in (reduction order). */
    std::uint32_t sampleIndex = 0;
    /** Frequency the wave's domain ran at during the sample, in GHz. */
    double freqGHz = 0.0;
    /** Instructions the wave committed during the sample. */
    double instr = 0.0;
};

/** Reusable scratch chips + reduction buffers for oracle sweeps. */
class SnapshotPool
{
  public:
    /**
     * Enable or disable the dirty-region delta restore path. On by
     * default; turning it off forces every restore() to a full
     * copy-assign (the pooled-full reference mode the identity tests
     * and benchmarks compare against).
     */
    void setDeltaRestore(bool enabled) { delta_ = enabled; }

    /** Whether delta restores are enabled. */
    bool deltaRestore() const { return delta_; }

    /**
     * Start a sweep against @p base: take the base chip's dirty marks
     * accumulated since the previous sweep and fold them into every
     * slot's pending mask. Must be called once per sweep, after
     * ensureSlots() and before any restore(), with no base mutation
     * in between. A no-op when delta restores are disabled.
     */
    void beginSweep(const gpu::GpuChip &base);

    /**
     * Restore a slot's scratch chip to an exact copy of a base chip.
     * The first use of a slot copy-constructs its chip (unless
     * pre-warmed by ensureSlots); later uses either copy-assign into
     * the existing storage or, when the slot's delta chain against
     * @p base is unbroken, copy only the dirty regions. Safe to call
     * concurrently for distinct slot indices.
     *
     * @param i     Sample slot index; must be < slotCount().
     * @param base  Chip state to restore the scratch chip to.
     * @return The slot's scratch chip, equal to @p base.
     */
    gpu::GpuChip &restore(std::size_t i, const gpu::GpuChip &base);

    /**
     * Reusable harvest record for one sample slot.
     *
     * @param i  Sample slot index; must be < slotCount().
     * @return The slot's epoch record (contents are stale until the
     *         sweep harvests into it).
     */
    gpu::EpochRecord &record(std::size_t i);

    /**
     * Reusable wave-observation buffer for one sample slot.
     *
     * @param i  Sample slot index; must be < slotCount().
     * @return The slot's wave-sample buffer (cleared by the sweep
     *         before refilling; capacity persists across epochs).
     */
    std::vector<WaveSample> &waves(std::size_t i);

    /**
     * Grow the pool to at least @p n sample slots. Must be called (by
     * the sweep, before any parallel phase) so that the concurrent
     * per-slot accessors never reallocate the slot array.
     *
     * @param n  Minimum number of sample slots to provide.
     */
    void ensureSlots(std::size_t n);

    /**
     * Grow the pool to at least @p n sample slots and pre-warm every
     * chipless slot with a copy of @p base, so the first sweep's
     * (possibly parallel, possibly timed) restore phase never
     * copy-constructs. Serial prologue only.
     */
    void ensureSlots(std::size_t n, const gpu::GpuChip &base);

    /** @return Number of sample slots currently allocated. */
    std::size_t slotCount() const { return slots_.size(); }

    /** Restores served by the dirty-region delta path (lifetime). */
    std::uint64_t
    deltaRestores() const
    {
        return deltaRestores_.load(std::memory_order_relaxed);
    }

    /** Restores served by full copy-assign or copy-construct
     *  (lifetime). Benchmarks and tests use the two counters to prove
     *  the path they think they measured is the one that ran. */
    std::uint64_t
    fullRestores() const
    {
        return fullRestores_.load(std::memory_order_relaxed);
    }

    /**
     * Forget all snapshot state while keeping the allocated capacity
     * (chips, buffers, masks). The next sweep full-restores every
     * slot; steady-state allocation behavior is preserved across
     * application switches in a long-lived driver.
     */
    void clear();

    /** Reduction scratch shared across one sweep (and reused by the
     *  next one). Owned here so sweeps are allocation-free in steady
     *  state; only forkPreExecuteSweep should touch it. */
    struct Scratch
    {
        /** All samples' wave observations, flattened for sorting. */
        std::vector<WaveSample> merged;
        /** Regression inputs for one wave group. */
        std::vector<double> fitFreqs;
        std::vector<double> fitInstr;
        /** Per-state frequency cache (hoisted VfTable lookups). */
        std::vector<Freq> stateFreq;
        std::vector<double> stateGHz;
        /** Per-sample wall time in ns (-1 = metrics disabled). */
        std::vector<std::int64_t> sampleWallNs;
    };

    Scratch &scratch() { return scratch_; }

  private:
    struct Slot
    {
        /** Deferred: GpuChip has no default constructor, so the chip
         *  is created on first restore() (or pre-warmed) and reused
         *  afterwards. */
        std::unique_ptr<gpu::GpuChip> chip;
        gpu::EpochRecord record;
        std::vector<WaveSample> waves;

        // --- delta-restore state ---
        /** Base-chip dirt accumulated while this slot sat out (every
         *  beginSweep ORs the base's take in here). */
        gpu::ChipDirty pending;
        /** Scratch for the slot chip's own take at restore time. */
        gpu::ChipDirty takeBuf;
        /** Sweep this slot was synced for; consumed by restore(). */
        std::uint64_t syncSeq = 0;
        /** The slot chip equals base-as-of-some-take plus tracked
         *  dirt; false forces the next restore to be a full copy. */
        bool canDelta = false;
    };

    std::vector<Slot> slots_;
    Scratch scratch_;

    /** Delta restores enabled (setDeltaRestore). */
    bool delta_ = true;
    /** Identity of the base chip the delta chain follows. */
    std::uint64_t baseUid_ = 0;
    /** The base chip's take sequence as of the last beginSweep. */
    std::uint64_t baseSeq_ = 0;
    /** Monotone sweep counter (restore() checks slot sync against it). */
    std::uint64_t sweepSeq_ = 0;
    /** Scratch for the base chip's take in beginSweep. */
    gpu::ChipDirty baseTake_;

    /** Lifetime restore-path counters (relaxed: restores may run on
     *  concurrent per-slot tasks; exact ordering is irrelevant). */
    std::atomic<std::uint64_t> deltaRestores_{0};
    std::atomic<std::uint64_t> fullRestores_{0};
};

} // namespace pcstall::oracle

#endif // PCSTALL_ORACLE_SNAPSHOT_POOL_HH
