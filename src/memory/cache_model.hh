/**
 * @file
 * A set-associative, LRU, value-semantic cache tag store.
 *
 * Only tags and replacement state are modelled (no data), which is all
 * that timing simulation needs. The class is a plain value so that the
 * oracle's snapshot/restore is a struct copy.
 */

#ifndef PCSTALL_MEMORY_CACHE_MODEL_HH
#define PCSTALL_MEMORY_CACHE_MODEL_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bit_mask.hh"

namespace pcstall::memory
{

/** Tag-only set-associative cache with true-LRU replacement. */
class CacheModel
{
  public:
    /**
     * @param size_bytes Total capacity; must be a multiple of
     *                   line_bytes * ways.
     * @param line_bytes Line size (power of two).
     * @param ways       Associativity.
     */
    CacheModel(std::uint64_t size_bytes, std::uint32_t line_bytes,
               std::uint32_t ways);

    /**
     * Look up @p addr; on miss optionally allocate (evicting LRU).
     * @return true on hit.
     */
    bool access(std::uint64_t addr, bool allocate_on_miss);

    /** Probe without touching replacement state. */
    bool probe(std::uint64_t addr) const;

    /** Invalidate everything (used between applications in tests). */
    void flush();

    std::uint32_t numSets() const { return sets; }
    std::uint32_t numWays() const { return ways; }
    std::uint32_t lineSize() const { return lineBytes; }

    /** Lifetime hit/access counters (diagnostics and tests). */
    std::uint64_t hitCount() const { return hits; }
    std::uint64_t accessCount() const { return accesses; }

    /** Mix every tag, LRU stamp and counter into the digest @p h
     *  (oracle snapshot-restore verification). */
    void fingerprint(std::uint64_t &h) const;

    // --- dirty-region snapshot support -------------------------------

    /**
     * Copy the per-set dirty bitmap into @p sets_out, clear it, and
     * return whether anything changed since the previous take. Mutable
     * tracking state: callable on a const base cache.
     */
    bool
    takeDirty(BitMask &sets_out) const
    {
        sets_out = dirtySets_;
        dirtySets_.clearAll();
        const bool touched = dirtyAny_;
        dirtyAny_ = false;
        return touched;
    }

    /** True when un-taken dirty marks are pending. */
    bool hasPendingDirty() const { return dirtyAny_; }

    /**
     * Make this cache equal to @p base given that the two differ only
     * in the counters plus the sets flagged in @p sets_mask (the union
     * of both caches' dirt since they were last identical). Each dirty
     * set restores as one contiguous ways-sized copy.
     */
    void
    restoreSetsFrom(const CacheModel &base, const BitMask &sets_mask)
    {
        useCounter = base.useCounter;
        hits = base.hits;
        accesses = base.accesses;
        // Scattered per-set copies beat one bulk memcpy only while
        // the dirty fraction is small; past roughly a quarter of the
        // sets, the per-set loop overhead costs more than copying the
        // clean sets along with the dirty ones (the result is
        // identical either way).
        if (sets_mask.count() * 4 >= sets) {
            lines = base.lines;
            return;
        }
        sets_mask.forEachSet([&](std::size_t s) {
            std::copy_n(&base.lines[s * ways], ways, &lines[s * ways]);
        });
    }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint64_t setIndex(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;

    std::uint32_t lineBytes;
    std::uint32_t ways;
    std::uint32_t sets;
    std::uint32_t lineShift;
    std::vector<Line> lines;
    std::uint64_t useCounter = 0;
    std::uint64_t hits = 0;
    std::uint64_t accesses = 0;

    // --- dirty marks (snapshot delta support; not simulation state) ---
    /** Anything (counters or lines) changed since the last take. */
    mutable bool dirtyAny_ = true;
    /** Sets whose lines changed since the last take. */
    mutable BitMask dirtySets_;
};

} // namespace pcstall::memory

#endif // PCSTALL_MEMORY_CACHE_MODEL_HH
