/**
 * @file
 * A set-associative, LRU, value-semantic cache tag store.
 *
 * Only tags and replacement state are modelled (no data), which is all
 * that timing simulation needs. The class is a plain value so that the
 * oracle's snapshot/restore is a struct copy.
 */

#ifndef PCSTALL_MEMORY_CACHE_MODEL_HH
#define PCSTALL_MEMORY_CACHE_MODEL_HH

#include <cstdint>
#include <vector>

namespace pcstall::memory
{

/** Tag-only set-associative cache with true-LRU replacement. */
class CacheModel
{
  public:
    /**
     * @param size_bytes Total capacity; must be a multiple of
     *                   line_bytes * ways.
     * @param line_bytes Line size (power of two).
     * @param ways       Associativity.
     */
    CacheModel(std::uint64_t size_bytes, std::uint32_t line_bytes,
               std::uint32_t ways);

    /**
     * Look up @p addr; on miss optionally allocate (evicting LRU).
     * @return true on hit.
     */
    bool access(std::uint64_t addr, bool allocate_on_miss);

    /** Probe without touching replacement state. */
    bool probe(std::uint64_t addr) const;

    /** Invalidate everything (used between applications in tests). */
    void flush();

    std::uint32_t numSets() const { return sets; }
    std::uint32_t numWays() const { return ways; }
    std::uint32_t lineSize() const { return lineBytes; }

    /** Lifetime hit/access counters (diagnostics and tests). */
    std::uint64_t hitCount() const { return hits; }
    std::uint64_t accessCount() const { return accesses; }

    /** Mix every tag, LRU stamp and counter into the digest @p h
     *  (oracle snapshot-restore verification). */
    void fingerprint(std::uint64_t &h) const;

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint64_t setIndex(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;

    std::uint32_t lineBytes;
    std::uint32_t ways;
    std::uint32_t sets;
    std::uint32_t lineShift;
    std::vector<Line> lines;
    std::uint64_t useCounter = 0;
    std::uint64_t hits = 0;
    std::uint64_t accesses = 0;
};

} // namespace pcstall::memory

#endif // PCSTALL_MEMORY_CACHE_MODEL_HH
