#include "memory/cache_model.hh"

#include <bit>

#include "common/logging.hh"
#include "common/rng.hh"

namespace pcstall::memory
{

CacheModel::CacheModel(std::uint64_t size_bytes, std::uint32_t line_bytes,
                       std::uint32_t ways)
    : lineBytes(line_bytes), ways(ways)
{
    fatalIf(line_bytes == 0 || !std::has_single_bit(line_bytes),
            "cache line size must be a nonzero power of two");
    fatalIf(ways == 0, "cache associativity must be nonzero");
    fatalIf(size_bytes % (static_cast<std::uint64_t>(line_bytes) * ways)
            != 0,
            "cache size must be a multiple of line size * ways");
    sets = static_cast<std::uint32_t>(
        size_bytes / (static_cast<std::uint64_t>(line_bytes) * ways));
    fatalIf(sets == 0, "cache must have at least one set");
    lineShift = static_cast<std::uint32_t>(std::countr_zero(line_bytes));
    lines.assign(static_cast<std::size_t>(sets) * ways, Line{});
    dirtySets_.resize(sets);
    dirtySets_.setAll();
}

std::uint64_t
CacheModel::setIndex(std::uint64_t addr) const
{
    return (addr >> lineShift) % sets;
}

std::uint64_t
CacheModel::tagOf(std::uint64_t addr) const
{
    return (addr >> lineShift) / sets;
}

bool
CacheModel::access(std::uint64_t addr, bool allocate_on_miss)
{
    ++accesses;
    dirtyAny_ = true;
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *base = &lines[set * ways];

    Line *victim = base;
    for (std::uint32_t w = 0; w < ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = ++useCounter;
            ++hits;
            dirtySets_.set(set);
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    if (allocate_on_miss) {
        victim->valid = true;
        victim->tag = tag;
        victim->lastUse = ++useCounter;
        dirtySets_.set(set);
    }
    return false;
}

bool
CacheModel::probe(std::uint64_t addr) const
{
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    const Line *base = &lines[set * ways];
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
CacheModel::flush()
{
    for (Line &line : lines)
        line.valid = false;
    dirtyAny_ = true;
    dirtySets_.setAll();
}

void
CacheModel::fingerprint(std::uint64_t &h) const
{
    auto mix = [&h](std::uint64_t v) { h = hashCombine(h, v); };
    mix(useCounter);
    mix(hits);
    mix(accesses);
    for (const Line &line : lines) {
        mix(line.valid ? 1 : 0);
        if (line.valid) {
            mix(line.tag);
            mix(line.lastUse);
        }
    }
}

} // namespace pcstall::memory
