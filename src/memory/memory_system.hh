/**
 * @file
 * The GPU memory hierarchy: per-CU L1 caches (clocked in the CU's V/f
 * domain), a banked shared L2 at a fixed clock (1.6 GHz in the paper),
 * and DRAM channels with bandwidth queues.
 *
 * Completion times are computed at issue. Because the GPU event loop
 * processes compute units in global time order, requests arrive at the
 * shared levels in (approximately) true temporal order, so per-bank and
 * per-channel "next free" times produce frequency-sensitive contention:
 * raising one domain's clock raises its request rate and queues behind
 * it grow — this is the second-order effect behind the paper's FwdSoft
 * observation (Section 6.2).
 *
 * The whole object is value-semantic for oracle snapshot/restore.
 */

#ifndef PCSTALL_MEMORY_MEMORY_SYSTEM_HH
#define PCSTALL_MEMORY_MEMORY_SYSTEM_HH

#include <cstdint>
#include <vector>

#include "common/bit_mask.hh"
#include "common/types.hh"
#include "memory/cache_model.hh"

namespace pcstall::memory
{

/** Configuration of the full hierarchy. */
struct MemConfig
{
    std::uint32_t numCus = 64;

    /** Line size used at every level. */
    std::uint32_t lineBytes = 64;

    // --- L1 (per CU, in the CU's clock domain) ---
    std::uint64_t l1SizeBytes = 16 * 1024;
    std::uint32_t l1Ways = 4;
    /** Hit latency in CU cycles (scales with the domain frequency). */
    Cycles l1HitCycles = 28;
    /** Fixed cost to detect a miss and traverse to the L2 crossbar. */
    Tick l1MissOverhead = 2 * tickNs;

    // --- L2 (shared, banked, fixed clock) ---
    std::uint32_t l2Banks = 16;
    std::uint64_t l2SizeBytes = 4ULL * 1024 * 1024;
    std::uint32_t l2Ways = 16;
    Freq l2Freq = 1'600 * freqMHz;
    /** Bank occupancy per request, in L2 cycles. */
    Cycles l2ServiceCycles = 2;
    /** Hit latency (lookup + return), in L2 cycles. */
    Cycles l2HitCycles = 32;

    // --- DRAM ---
    std::uint32_t dramChannels = 8;
    /** Row access latency. */
    Tick dramLatency = 120 * tickNs;
    /** Channel occupancy per line transfer (64 B per pseudo-channel
     *  pair at HBM2 rates, ~128 GB/s per channel). */
    Tick dramServicePerLine = tickNs / 2;

    /** Maximum in-flight vector memory requests per CU (MSHR bound). */
    std::uint32_t maxOutstandingPerCu = 64;

    /**
     * Model per-CU store write-combining: consecutive stores to the
     * same line merge in the L1 write buffer and only the first one
     * occupies an L2 bank (GCN-style coalescing write-back path).
     */
    bool storeCombining = true;
};

/** Which level serviced a request. */
enum class ServiceLevel : std::uint8_t { L1, L2, Dram };

/** Name of a ServiceLevel. */
const char *serviceLevelName(ServiceLevel level);

/** Outcome of a memory access. */
struct MemResult
{
    /** Global tick at which the requesting wavefront's op completes. */
    Tick completion = 0;
    ServiceLevel servicedBy = ServiceLevel::L1;
};

/** Per-CU activity counters for the power model and diagnostics. */
struct MemActivity
{
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t stores = 0;
    /** Stores absorbed by the L1 write-combining buffer. */
    std::uint64_t storesCombined = 0;

    MemActivity &operator+=(const MemActivity &other);
};

/**
 * Dirty marks for one MemorySystem relative to its last snapshot
 * take: the "small" flat state (queue heads, activity counters, store
 * lines) as a single flag, plus per-cache set bitmaps.
 */
struct MemDirty
{
    /** bankFree/channelFree/cuActivity/lastStoreLine changed. */
    bool smallState = false;
    /** Per-CU L1 dirty-set bitmaps. */
    std::vector<BitMask> l1Sets;
    /** Per-bank L2 dirty-set bitmaps. */
    std::vector<BitMask> l2Sets;

    void
    clearAll()
    {
        smallState = false;
        for (BitMask &m : l1Sets)
            m.clearAll();
        for (BitMask &m : l2Sets)
            m.clearAll();
    }

    MemDirty &
    operator|=(const MemDirty &other)
    {
        smallState = smallState || other.smallState;
        if (l1Sets.size() < other.l1Sets.size())
            l1Sets.resize(other.l1Sets.size());
        for (std::size_t i = 0; i < other.l1Sets.size(); ++i)
            l1Sets[i] |= other.l1Sets[i];
        if (l2Sets.size() < other.l2Sets.size())
            l2Sets.resize(other.l2Sets.size());
        for (std::size_t i = 0; i < other.l2Sets.size(); ++i)
            l2Sets[i] |= other.l2Sets[i];
        return *this;
    }
};

/**
 * The full hierarchy. Copyable: a copy is an independent, identical
 * memory system (caches, queues, counters).
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemConfig &config);

    /**
     * Issue an access from CU @p cu_id at global time @p now.
     *
     * @param cu_period Current clock period of the CU's domain (ticks);
     *                  L1 hit latency is counted in these cycles.
     * @param is_store  Stores are write-through/no-allocate and are
     *                  considered complete when the L2 bank accepts
     *                  them (s_waitcnt vscnt semantics).
     */
    MemResult access(std::uint32_t cu_id, std::uint64_t addr, bool is_store,
                     Tick now, Tick cu_period);

    const MemConfig &config() const { return cfg; }

    /** Activity accumulated for a CU since the last reset. */
    const MemActivity &activity(std::uint32_t cu_id) const
    {
        return cuActivity[cu_id];
    }

    /** Reset all per-CU activity counters (per-epoch harvesting). */
    void resetActivity();

    /** Direct access to a CU's L1 (tests). */
    const CacheModel &l1(std::uint32_t cu_id) const { return l1s[cu_id]; }

    /** Direct access to an L2 bank slice (tests). */
    const CacheModel &l2Bank(std::uint32_t bank) const
    {
        return l2Slices[bank];
    }

    /** Mix the hierarchy's complete state (cache tags, queue heads,
     *  activity counters) into the digest @p h. */
    void fingerprint(std::uint64_t &h) const;

    // --- dirty-region snapshot support -------------------------------

    /**
     * Copy all accumulated dirty marks into @p out (sizing its bitmap
     * vectors on first use), clear them, and return whether anything
     * changed since the previous take.
     */
    bool takeDirty(MemDirty &out) const;

    /** True when un-taken dirty marks are pending anywhere. */
    bool hasPendingDirty() const;

    /**
     * Make this hierarchy equal to @p base given that the two differ
     * only in the regions flagged in @p dirty (the union of both
     * sides' dirt since they were last identical).
     */
    void restoreDeltaFrom(const MemorySystem &base, const MemDirty &dirty);

  private:
    std::uint32_t bankOf(std::uint64_t addr) const;
    std::uint32_t channelOf(std::uint64_t addr) const;

    MemConfig cfg;
    std::vector<CacheModel> l1s;
    std::vector<CacheModel> l2Slices;
    /** Earliest tick each L2 bank can accept the next request. */
    std::vector<Tick> bankFree;
    /** Earliest tick each DRAM channel can start the next transfer. */
    std::vector<Tick> channelFree;
    std::vector<MemActivity> cuActivity;
    /** Line address of each CU's most recent store (write combining). */
    std::vector<std::uint64_t> lastStoreLine;
    Tick l2Period;

    // --- dirty marks (snapshot delta support; not simulation state) ---
    /** The flat non-cache state changed since the last take. The
     *  caches track their own dirt (CacheModel::takeDirty). */
    mutable bool smallDirty_ = true;
};

} // namespace pcstall::memory

#endif // PCSTALL_MEMORY_MEMORY_SYSTEM_HH
