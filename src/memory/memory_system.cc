#include "memory/memory_system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace pcstall::memory
{

const char *
serviceLevelName(ServiceLevel level)
{
    switch (level) {
      case ServiceLevel::L1: return "L1";
      case ServiceLevel::L2: return "L2";
      case ServiceLevel::Dram: return "DRAM";
    }
    return "?";
}

MemActivity &
MemActivity::operator+=(const MemActivity &other)
{
    l1Hits += other.l1Hits;
    l1Misses += other.l1Misses;
    l2Hits += other.l2Hits;
    l2Misses += other.l2Misses;
    stores += other.stores;
    storesCombined += other.storesCombined;
    return *this;
}

MemorySystem::MemorySystem(const MemConfig &config) : cfg(config)
{
    fatalIf(cfg.numCus == 0, "memory system needs at least one CU");
    fatalIf(cfg.l2Banks == 0, "memory system needs at least one L2 bank");
    fatalIf(cfg.dramChannels == 0, "memory system needs a DRAM channel");
    fatalIf(cfg.l2SizeBytes % cfg.l2Banks != 0,
            "L2 size must divide evenly across banks");

    l1s.reserve(cfg.numCus);
    for (std::uint32_t cu = 0; cu < cfg.numCus; ++cu)
        l1s.emplace_back(cfg.l1SizeBytes, cfg.lineBytes, cfg.l1Ways);

    const std::uint64_t slice_size = cfg.l2SizeBytes / cfg.l2Banks;
    l2Slices.reserve(cfg.l2Banks);
    for (std::uint32_t b = 0; b < cfg.l2Banks; ++b)
        l2Slices.emplace_back(slice_size, cfg.lineBytes, cfg.l2Ways);

    bankFree.assign(cfg.l2Banks, 0);
    channelFree.assign(cfg.dramChannels, 0);
    cuActivity.assign(cfg.numCus, MemActivity{});
    lastStoreLine.assign(cfg.numCus, ~0ULL);
    l2Period = clockPeriod(cfg.l2Freq);
}

std::uint32_t
MemorySystem::bankOf(std::uint64_t addr) const
{
    return static_cast<std::uint32_t>((addr / cfg.lineBytes) % cfg.l2Banks);
}

std::uint32_t
MemorySystem::channelOf(std::uint64_t addr) const
{
    return static_cast<std::uint32_t>(
        (addr / cfg.lineBytes / cfg.l2Banks) % cfg.dramChannels);
}

MemResult
MemorySystem::access(std::uint32_t cu_id, std::uint64_t addr, bool is_store,
                     Tick now, Tick cu_period)
{
    panicIf(cu_id >= cfg.numCus, "memory access from unknown CU");
    // Every access at least bumps an activity counter; the touched
    // caches mark their own sets.
    smallDirty_ = true;
    MemActivity &act = cuActivity[cu_id];
    MemResult result;

    const std::uint64_t line_addr = addr & ~static_cast<std::uint64_t>(
        cfg.lineBytes - 1);

    if (is_store) {
        // Write-through, no-allocate: touch L1 if present, then occupy
        // the L2 bank. The store is architecturally complete (for
        // waitcnt purposes) once the bank accepts it. Back-to-back
        // stores to the same line merge in the L1 write buffer.
        ++act.stores;
        if (cfg.storeCombining && lastStoreLine[cu_id] == line_addr) {
            // Absorbed by the write buffer in a single CU cycle.
            ++act.storesCombined;
            result.completion = now + cu_period;
            result.servicedBy = ServiceLevel::L1;
            return result;
        }
        lastStoreLine[cu_id] = line_addr;
        l1s[cu_id].probe(line_addr);

        const Tick arrive = now + cfg.l1MissOverhead;
        const std::uint32_t bank = bankOf(line_addr);
        const Tick start = std::max(arrive, bankFree[bank]);
        bankFree[bank] = start + cfg.l2ServiceCycles * l2Period;

        const bool l2_hit = l2Slices[bank].access(line_addr, true);
        if (l2_hit) {
            ++act.l2Hits;
        } else {
            ++act.l2Misses;
            // Dirty line eventually writes back; occupy the channel
            // but do not delay store completion.
            const std::uint32_t chan = channelOf(line_addr);
            const Tick dram_start = std::max(bankFree[bank],
                                             channelFree[chan]);
            channelFree[chan] = dram_start + cfg.dramServicePerLine;
        }
        result.completion = bankFree[bank];
        result.servicedBy = l2_hit ? ServiceLevel::L2 : ServiceLevel::Dram;
        return result;
    }

    // Loads: L1 in the CU's own clock domain.
    const bool l1_hit = l1s[cu_id].access(line_addr, true);
    if (l1_hit) {
        ++act.l1Hits;
        result.completion = now + cfg.l1HitCycles * cu_period;
        result.servicedBy = ServiceLevel::L1;
        return result;
    }
    ++act.l1Misses;

    const Tick arrive = now + cfg.l1HitCycles * cu_period +
        cfg.l1MissOverhead;
    const std::uint32_t bank = bankOf(line_addr);
    const Tick start = std::max(arrive, bankFree[bank]);
    bankFree[bank] = start + cfg.l2ServiceCycles * l2Period;

    const bool l2_hit = l2Slices[bank].access(line_addr, true);
    if (l2_hit) {
        ++act.l2Hits;
        result.completion = start + cfg.l2HitCycles * l2Period;
        result.servicedBy = ServiceLevel::L2;
        return result;
    }
    ++act.l2Misses;

    const std::uint32_t chan = channelOf(line_addr);
    const Tick lookup_done = start + cfg.l2HitCycles * l2Period;
    const Tick dram_start = std::max(lookup_done, channelFree[chan]);
    channelFree[chan] = dram_start + cfg.dramServicePerLine;
    result.completion = dram_start + cfg.dramLatency;
    result.servicedBy = ServiceLevel::Dram;
    return result;
}

void
MemorySystem::resetActivity()
{
    std::fill(cuActivity.begin(), cuActivity.end(), MemActivity{});
    smallDirty_ = true;
}

bool
MemorySystem::takeDirty(MemDirty &out) const
{
    if (out.l1Sets.size() != l1s.size())
        out.l1Sets.resize(l1s.size());
    if (out.l2Sets.size() != l2Slices.size())
        out.l2Sets.resize(l2Slices.size());

    bool touched = smallDirty_;
    out.smallState = smallDirty_;
    smallDirty_ = false;
    for (std::size_t i = 0; i < l1s.size(); ++i)
        touched = l1s[i].takeDirty(out.l1Sets[i]) || touched;
    for (std::size_t i = 0; i < l2Slices.size(); ++i)
        touched = l2Slices[i].takeDirty(out.l2Sets[i]) || touched;
    return touched;
}

bool
MemorySystem::hasPendingDirty() const
{
    if (smallDirty_)
        return true;
    for (const CacheModel &l1 : l1s)
        if (l1.hasPendingDirty())
            return true;
    for (const CacheModel &slice : l2Slices)
        if (slice.hasPendingDirty())
            return true;
    return false;
}

void
MemorySystem::restoreDeltaFrom(const MemorySystem &base,
                               const MemDirty &dirty)
{
    if (dirty.smallState) {
        bankFree = base.bankFree;
        channelFree = base.channelFree;
        cuActivity = base.cuActivity;
        lastStoreLine = base.lastStoreLine;
    }
    for (std::size_t i = 0; i < l1s.size(); ++i)
        l1s[i].restoreSetsFrom(base.l1s[i], dirty.l1Sets[i]);
    for (std::size_t i = 0; i < l2Slices.size(); ++i)
        l2Slices[i].restoreSetsFrom(base.l2Slices[i], dirty.l2Sets[i]);
}

void
MemorySystem::fingerprint(std::uint64_t &h) const
{
    auto mix = [&h](std::uint64_t v) { h = hashCombine(h, v); };
    for (const CacheModel &l1 : l1s)
        l1.fingerprint(h);
    for (const CacheModel &slice : l2Slices)
        slice.fingerprint(h);
    for (Tick t : bankFree)
        mix(static_cast<std::uint64_t>(t));
    for (Tick t : channelFree)
        mix(static_cast<std::uint64_t>(t));
    for (const MemActivity &act : cuActivity) {
        mix(act.l1Hits);
        mix(act.l1Misses);
        mix(act.l2Hits);
        mix(act.l2Misses);
        mix(act.stores);
        mix(act.storesCombined);
    }
    for (std::uint64_t line : lastStoreLine)
        mix(line);
}

} // namespace pcstall::memory
