#include "power/power_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/stats_util.hh"

namespace pcstall::power
{

PowerModel::PowerModel(PowerParams params) : p(params)
{
    fatalIf(p.eInst <= 0.0 || p.cClk <= 0.0,
            "power model dynamic coefficients must be positive");
    fatalIf(p.etaPeak <= 0.0 || p.etaPeak > 1.0,
            "IVR peak efficiency must be in (0, 1]");
}

double
PowerModel::ivrEfficiency(Volts voltage) const
{
    const double eta =
        p.etaPeak - p.etaSlope * std::abs(voltage - p.etaVopt);
    return clampTo(eta, 0.5, 0.98);
}

Joules
PowerModel::transitionEnergy(Volts from, Volts to) const
{
    if (from == to)
        return 0.0;
    return p.transitionCap * std::abs(to * to - from * from) / 2.0 +
        p.transitionFixed;
}

Watts
PowerModel::cuLeakage(Volts voltage, double temperature) const
{
    return p.leakPerCu * voltage *
        std::exp(p.leakTempCoeff * (temperature - p.tRef));
}

CuEnergy
PowerModel::cuEpochEnergy(Volts voltage, Freq freq,
                          std::uint64_t committed,
                          const memory::MemActivity &activity,
                          Tick epoch_len, double temperature) const
{
    const double v2 = voltage * voltage;
    const double seconds = tickSeconds(epoch_len);
    const double cycles = seconds * static_cast<double>(freq);

    CuEnergy energy;
    const double l1_accesses = static_cast<double>(
        activity.l1Hits + activity.l1Misses + activity.storesCombined);
    energy.dynamic = v2 *
        (p.eInst * static_cast<double>(committed) +
         p.eL1 * l1_accesses +
         p.cClk * cycles);
    energy.leakage = cuLeakage(voltage, temperature) * seconds;

    const double delivered = energy.dynamic + energy.leakage;
    const double eta = ivrEfficiency(voltage);
    energy.ivrLoss = delivered / eta - delivered;
    return energy;
}

Joules
PowerModel::memEpochEnergy(const memory::MemActivity &total_activity,
                           Tick epoch_len) const
{
    const double seconds = tickSeconds(epoch_len);
    // Stores absorbed by the write-combining buffer never reach L2.
    const double l2_accesses = static_cast<double>(
        total_activity.l2Hits + total_activity.l2Misses +
        total_activity.stores - total_activity.storesCombined);
    const double dram_accesses =
        static_cast<double>(total_activity.l2Misses);
    return p.memStatic * seconds +
        p.eL2 * l2_accesses +
        p.eDram * dram_accesses;
}

} // namespace pcstall::power
