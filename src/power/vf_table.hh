/**
 * @file
 * The discrete voltage/frequency operating points of a DVFS domain.
 * The paper's evaluation uses 10 states from 1.3 GHz to 2.2 GHz in
 * 100 MHz steps (Section 5), with the supply voltage rising
 * superlinearly toward the top of the range as in real V/f curves.
 */

#ifndef PCSTALL_POWER_VF_TABLE_HH
#define PCSTALL_POWER_VF_TABLE_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace pcstall::power
{

/** One operating point. */
struct VfState
{
    Freq freq = 0;
    Volts voltage = 0.0;
};

/** An ordered (ascending frequency) set of V/f states. */
class VfTable
{
  public:
    /** Build from explicit states (must be ascending in frequency). */
    explicit VfTable(std::vector<VfState> states);

    /**
     * The paper's table: 1.3–2.2 GHz in 100 MHz steps with a
     * Vega-like voltage curve (0.70 V at the bottom, 1.10 V at the
     * top, superlinear).
     */
    static VfTable paperTable();

    /**
     * A wider table (1.0–3.0 GHz) used for the linearity
     * characterization in Figure 5.
     */
    static VfTable wideTable();

    std::size_t numStates() const { return states_.size(); }
    const VfState &state(std::size_t i) const { return states_.at(i); }

    /** Index of the state with frequency @p freq; -1 if absent. */
    int indexOf(Freq freq) const;

    /** Index of the state closest to @p freq. */
    std::size_t nearestIndex(Freq freq) const;

    const VfState &lowest() const { return states_.front(); }
    const VfState &highest() const { return states_.back(); }

    /** Voltage for an arbitrary frequency (interp/extrapolated). */
    Volts voltageAt(Freq freq) const;

  private:
    std::vector<VfState> states_;
};

} // namespace pcstall::power

#endif // PCSTALL_POWER_VF_TABLE_HH
