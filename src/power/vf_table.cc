#include "power/vf_table.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pcstall::power
{

namespace
{

/** Vega-like V/f curve: superlinear voltage over the DVFS range. */
Volts
curveVoltage(double f_ghz)
{
    // Anchored at 0.75 V @ 1.3 GHz and 1.05 V @ 2.2 GHz with a mild
    // quadratic term so the top states pay disproportionate power.
    // (The IVR-constrained range of a commercial part, paper Sec 5.4.)
    const double x = (f_ghz - 1.3) / 0.9;
    return 0.75 + 0.22 * x + 0.08 * x * x;
}

} // namespace

VfTable::VfTable(std::vector<VfState> states) : states_(std::move(states))
{
    fatalIf(states_.empty(), "VfTable needs at least one state");
    for (std::size_t i = 1; i < states_.size(); ++i) {
        fatalIf(states_[i].freq <= states_[i - 1].freq,
                "VfTable states must be ascending in frequency");
        fatalIf(states_[i].voltage < states_[i - 1].voltage,
                "VfTable voltage must be non-decreasing with frequency");
    }
    for (const VfState &s : states_)
        fatalIf(s.voltage <= 0.0, "VfTable voltage must be positive");
}

VfTable
VfTable::paperTable()
{
    std::vector<VfState> states;
    for (int mhz = 1300; mhz <= 2200; mhz += 100) {
        VfState s;
        s.freq = static_cast<Freq>(mhz) * freqMHz;
        s.voltage = curveVoltage(mhz / 1000.0);
        states.push_back(s);
    }
    return VfTable(std::move(states));
}

VfTable
VfTable::wideTable()
{
    std::vector<VfState> states;
    for (int mhz = 1000; mhz <= 3000; mhz += 250) {
        VfState s;
        s.freq = static_cast<Freq>(mhz) * freqMHz;
        s.voltage = std::max(0.65, curveVoltage(mhz / 1000.0));
        states.push_back(s);
    }
    return VfTable(std::move(states));
}

int
VfTable::indexOf(Freq freq) const
{
    for (std::size_t i = 0; i < states_.size(); ++i)
        if (states_[i].freq == freq)
            return static_cast<int>(i);
    return -1;
}

std::size_t
VfTable::nearestIndex(Freq freq) const
{
    std::size_t best = 0;
    std::uint64_t best_dist = ~0ULL;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        const std::uint64_t dist = states_[i].freq > freq
            ? states_[i].freq - freq : freq - states_[i].freq;
        if (dist < best_dist) {
            best_dist = dist;
            best = i;
        }
    }
    return best;
}

Volts
VfTable::voltageAt(Freq freq) const
{
    if (freq <= states_.front().freq)
        return states_.front().voltage;
    if (freq >= states_.back().freq)
        return states_.back().voltage;
    for (std::size_t i = 1; i < states_.size(); ++i) {
        if (freq <= states_[i].freq) {
            const VfState &a = states_[i - 1];
            const VfState &b = states_[i];
            const double frac =
                static_cast<double>(freq - a.freq) /
                static_cast<double>(b.freq - a.freq);
            return a.voltage + frac * (b.voltage - a.voltage);
        }
    }
    return states_.back().voltage;
}

} // namespace pcstall::power
