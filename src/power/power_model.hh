/**
 * @file
 * Reconstruction of the paper's in-house power model (Section 5):
 * performance-counter-driven dynamic energy, voltage/temperature
 * dependent leakage, IVR conversion efficiency, and a fixed-clock
 * memory-subsystem domain. The paper validated against a Radeon VII;
 * here the coefficients are chosen to give a Vega-class power range
 * (~150-250 W at 64 CUs) with a realistic dynamic/leakage split so
 * EDP/ED2P minima move with phase behaviour the same way.
 */

#ifndef PCSTALL_POWER_POWER_MODEL_HH
#define PCSTALL_POWER_POWER_MODEL_HH

#include <cstdint>

#include "common/types.hh"
#include "memory/memory_system.hh"
#include "power/vf_table.hh"

namespace pcstall::power
{

/** Model coefficients (all energies at 1 V; scaled by V^2). */
struct PowerParams
{
    /** Dynamic energy per committed wavefront instruction (J @ 1V). */
    double eInst = 0.80e-9;
    /** Dynamic energy per L1 access (J @ 1V). */
    double eL1 = 0.15e-9;
    /** Dynamic energy per L2 access (J, fixed-clock domain). */
    double eL2 = 0.40e-9;
    /** Dynamic energy per DRAM access (J). */
    double eDram = 2.50e-9;
    /** Clock-tree/idle-pipeline energy per CU cycle (J @ 1V). */
    double cClk = 0.30e-9;

    /** Per-CU leakage power at 1 V and reference temperature (W). */
    double leakPerCu = 1.10;
    /** Exponential leakage-vs-temperature coefficient (1/K). */
    double leakTempCoeff = 0.02;
    /** Reference temperature for leakage (C). */
    double tRef = 45.0;

    /** Static power of the fixed-clock memory domain (W). */
    double memStatic = 56.0;

    /** IVR peak efficiency and the voltage where it peaks. */
    double etaPeak = 0.90;
    double etaVopt = 0.92;
    /** Efficiency loss per volt away from the optimum. */
    double etaSlope = 0.22;

    /**
     * Energy of one V/f transition per CU domain: the IVR re-charges
     * the domain's decoupling/parasitic capacitance across the voltage
     * step, plus FLL relock overhead. Modelled as
     *   E = transitionCap * |V_new^2 - V_old^2| / 2 + transitionFixed.
     */
    double transitionCap = 120e-9; // farads of switched capacitance
    double transitionFixed = 2e-9; // joules per transition
};

/** Per-epoch energy breakdown for one CU domain. */
struct CuEnergy
{
    Joules dynamic = 0.0;
    Joules leakage = 0.0;
    /** IVR conversion loss (input minus delivered). */
    Joules ivrLoss = 0.0;

    Joules total() const { return dynamic + leakage + ivrLoss; }
};

/**
 * Computes epoch energies from activity counters. Stateless; the
 * thermal state is supplied by the caller (see ThermalModel).
 */
class PowerModel
{
  public:
    explicit PowerModel(PowerParams params = PowerParams{});

    /**
     * Energy one CU domain consumes over an epoch.
     *
     * @param voltage     Supply voltage of the domain.
     * @param freq        Operating frequency of the domain.
     * @param committed   Instructions committed in the epoch.
     * @param activity    Memory activity of the CU in the epoch
     *                    (L1 side is charged to the CU domain).
     * @param epoch_len   Epoch duration in ticks.
     * @param temperature Die temperature in C (leakage scaling).
     */
    CuEnergy cuEpochEnergy(Volts voltage, Freq freq,
                           std::uint64_t committed,
                           const memory::MemActivity &activity,
                           Tick epoch_len, double temperature) const;

    /**
     * Energy of the shared fixed-clock memory domain (L2 + DRAM) for
     * the aggregate activity of all CUs over an epoch.
     */
    Joules memEpochEnergy(const memory::MemActivity &total_activity,
                          Tick epoch_len) const;

    /** IVR efficiency at @p voltage, clamped to [0.5, 0.98]. */
    double ivrEfficiency(Volts voltage) const;

    /** Energy cost of one V/f transition of a CU domain. */
    Joules transitionEnergy(Volts from, Volts to) const;

    /** Leakage power of one CU at @p voltage and @p temperature. */
    Watts cuLeakage(Volts voltage, double temperature) const;

    const PowerParams &params() const { return p; }

  private:
    PowerParams p;
};

/**
 * Single-node lumped thermal RC model of the die. The time constant
 * (seconds) is far longer than the microsecond runs evaluated here, so
 * temperature mostly acts as a slowly-drifting leakage multiplier --
 * matching the paper's note that leakage varies little across the
 * small IVR voltage range but does respond to temperature.
 */
class ThermalModel
{
  public:
    ThermalModel(double ambient_c = 45.0, double r_th = 0.15,
                 double c_th = 50.0)
        : ambient(ambient_c), rTh(r_th), cTh(c_th), temp(ambient_c)
    {}

    /** Advance by @p dt seconds with total die power @p power. */
    void update(Watts power, double dt)
    {
        const double d_temp = (power - (temp - ambient) / rTh) / cTh;
        temp += d_temp * dt;
    }

    double temperature() const { return temp; }

  private:
    double ambient;
    double rTh;
    double cTh;
    double temp;
};

} // namespace pcstall::power

#endif // PCSTALL_POWER_POWER_MODEL_HH
