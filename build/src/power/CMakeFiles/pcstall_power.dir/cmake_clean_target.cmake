file(REMOVE_RECURSE
  "libpcstall_power.a"
)
