# Empty compiler generated dependencies file for pcstall_power.
# This may be replaced when dependencies are built.
