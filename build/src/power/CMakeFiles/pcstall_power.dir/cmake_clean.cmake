file(REMOVE_RECURSE
  "CMakeFiles/pcstall_power.dir/power_model.cc.o"
  "CMakeFiles/pcstall_power.dir/power_model.cc.o.d"
  "CMakeFiles/pcstall_power.dir/vf_table.cc.o"
  "CMakeFiles/pcstall_power.dir/vf_table.cc.o.d"
  "libpcstall_power.a"
  "libpcstall_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcstall_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
