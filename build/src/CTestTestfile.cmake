# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("isa")
subdirs("memory")
subdirs("gpu")
subdirs("power")
subdirs("dvfs")
subdirs("models")
subdirs("predict")
subdirs("faults")
subdirs("core")
subdirs("oracle")
subdirs("workloads")
subdirs("sim")
