# Empty dependencies file for pcstall_common.
# This may be replaced when dependencies are built.
