file(REMOVE_RECURSE
  "libpcstall_common.a"
)
