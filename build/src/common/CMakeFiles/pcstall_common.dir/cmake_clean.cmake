file(REMOVE_RECURSE
  "CMakeFiles/pcstall_common.dir/cli.cc.o"
  "CMakeFiles/pcstall_common.dir/cli.cc.o.d"
  "CMakeFiles/pcstall_common.dir/logging.cc.o"
  "CMakeFiles/pcstall_common.dir/logging.cc.o.d"
  "CMakeFiles/pcstall_common.dir/stats_util.cc.o"
  "CMakeFiles/pcstall_common.dir/stats_util.cc.o.d"
  "CMakeFiles/pcstall_common.dir/table_writer.cc.o"
  "CMakeFiles/pcstall_common.dir/table_writer.cc.o.d"
  "libpcstall_common.a"
  "libpcstall_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcstall_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
