# Empty compiler generated dependencies file for pcstall_predict.
# This may be replaced when dependencies are built.
