file(REMOVE_RECURSE
  "libpcstall_predict.a"
)
