file(REMOVE_RECURSE
  "CMakeFiles/pcstall_predict.dir/pc_table.cc.o"
  "CMakeFiles/pcstall_predict.dir/pc_table.cc.o.d"
  "CMakeFiles/pcstall_predict.dir/storage.cc.o"
  "CMakeFiles/pcstall_predict.dir/storage.cc.o.d"
  "libpcstall_predict.a"
  "libpcstall_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcstall_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
