# Empty dependencies file for pcstall_core.
# This may be replaced when dependencies are built.
