file(REMOVE_RECURSE
  "libpcstall_core.a"
)
