file(REMOVE_RECURSE
  "CMakeFiles/pcstall_core.dir/pcstall_controller.cc.o"
  "CMakeFiles/pcstall_core.dir/pcstall_controller.cc.o.d"
  "libpcstall_core.a"
  "libpcstall_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcstall_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
