file(REMOVE_RECURSE
  "CMakeFiles/pcstall_gpu.dir/compute_unit.cc.o"
  "CMakeFiles/pcstall_gpu.dir/compute_unit.cc.o.d"
  "CMakeFiles/pcstall_gpu.dir/gpu_chip.cc.o"
  "CMakeFiles/pcstall_gpu.dir/gpu_chip.cc.o.d"
  "libpcstall_gpu.a"
  "libpcstall_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcstall_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
