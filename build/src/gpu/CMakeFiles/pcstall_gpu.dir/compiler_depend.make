# Empty compiler generated dependencies file for pcstall_gpu.
# This may be replaced when dependencies are built.
