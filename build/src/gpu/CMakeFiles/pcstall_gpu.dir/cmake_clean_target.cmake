file(REMOVE_RECURSE
  "libpcstall_gpu.a"
)
