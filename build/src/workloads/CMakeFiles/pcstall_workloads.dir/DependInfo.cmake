
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/kernel_parser.cc" "src/workloads/CMakeFiles/pcstall_workloads.dir/kernel_parser.cc.o" "gcc" "src/workloads/CMakeFiles/pcstall_workloads.dir/kernel_parser.cc.o.d"
  "/root/repo/src/workloads/kernel_writer.cc" "src/workloads/CMakeFiles/pcstall_workloads.dir/kernel_writer.cc.o" "gcc" "src/workloads/CMakeFiles/pcstall_workloads.dir/kernel_writer.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/pcstall_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/pcstall_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcstall_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pcstall_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
