# Empty dependencies file for pcstall_workloads.
# This may be replaced when dependencies are built.
