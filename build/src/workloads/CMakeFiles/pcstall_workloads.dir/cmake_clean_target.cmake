file(REMOVE_RECURSE
  "libpcstall_workloads.a"
)
