file(REMOVE_RECURSE
  "CMakeFiles/pcstall_workloads.dir/kernel_parser.cc.o"
  "CMakeFiles/pcstall_workloads.dir/kernel_parser.cc.o.d"
  "CMakeFiles/pcstall_workloads.dir/kernel_writer.cc.o"
  "CMakeFiles/pcstall_workloads.dir/kernel_writer.cc.o.d"
  "CMakeFiles/pcstall_workloads.dir/workloads.cc.o"
  "CMakeFiles/pcstall_workloads.dir/workloads.cc.o.d"
  "libpcstall_workloads.a"
  "libpcstall_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcstall_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
