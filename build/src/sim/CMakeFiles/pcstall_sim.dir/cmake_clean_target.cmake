file(REMOVE_RECURSE
  "libpcstall_sim.a"
)
