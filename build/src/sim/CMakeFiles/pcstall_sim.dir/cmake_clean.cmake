file(REMOVE_RECURSE
  "CMakeFiles/pcstall_sim.dir/experiment.cc.o"
  "CMakeFiles/pcstall_sim.dir/experiment.cc.o.d"
  "CMakeFiles/pcstall_sim.dir/profiler.cc.o"
  "CMakeFiles/pcstall_sim.dir/profiler.cc.o.d"
  "CMakeFiles/pcstall_sim.dir/trace_export.cc.o"
  "CMakeFiles/pcstall_sim.dir/trace_export.cc.o.d"
  "libpcstall_sim.a"
  "libpcstall_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcstall_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
