# Empty compiler generated dependencies file for pcstall_sim.
# This may be replaced when dependencies are built.
