# Empty dependencies file for pcstall_oracle.
# This may be replaced when dependencies are built.
