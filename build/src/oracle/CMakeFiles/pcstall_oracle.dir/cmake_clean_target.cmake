file(REMOVE_RECURSE
  "libpcstall_oracle.a"
)
