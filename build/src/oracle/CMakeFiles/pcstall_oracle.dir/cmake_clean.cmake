file(REMOVE_RECURSE
  "CMakeFiles/pcstall_oracle.dir/fork_pre_execute.cc.o"
  "CMakeFiles/pcstall_oracle.dir/fork_pre_execute.cc.o.d"
  "CMakeFiles/pcstall_oracle.dir/oracle_controllers.cc.o"
  "CMakeFiles/pcstall_oracle.dir/oracle_controllers.cc.o.d"
  "libpcstall_oracle.a"
  "libpcstall_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcstall_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
