# Empty compiler generated dependencies file for pcstall_memory.
# This may be replaced when dependencies are built.
