file(REMOVE_RECURSE
  "libpcstall_memory.a"
)
