file(REMOVE_RECURSE
  "CMakeFiles/pcstall_memory.dir/cache_model.cc.o"
  "CMakeFiles/pcstall_memory.dir/cache_model.cc.o.d"
  "CMakeFiles/pcstall_memory.dir/memory_system.cc.o"
  "CMakeFiles/pcstall_memory.dir/memory_system.cc.o.d"
  "libpcstall_memory.a"
  "libpcstall_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcstall_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
