file(REMOVE_RECURSE
  "libpcstall_faults.a"
)
