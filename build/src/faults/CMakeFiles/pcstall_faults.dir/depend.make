# Empty dependencies file for pcstall_faults.
# This may be replaced when dependencies are built.
