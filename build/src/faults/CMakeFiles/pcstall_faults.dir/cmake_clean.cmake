file(REMOVE_RECURSE
  "CMakeFiles/pcstall_faults.dir/fault_injector.cc.o"
  "CMakeFiles/pcstall_faults.dir/fault_injector.cc.o.d"
  "libpcstall_faults.a"
  "libpcstall_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcstall_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
