
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faults/fault_injector.cc" "src/faults/CMakeFiles/pcstall_faults.dir/fault_injector.cc.o" "gcc" "src/faults/CMakeFiles/pcstall_faults.dir/fault_injector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcstall_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/pcstall_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcstall_power.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/pcstall_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pcstall_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/pcstall_memory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
