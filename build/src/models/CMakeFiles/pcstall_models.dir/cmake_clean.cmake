file(REMOVE_RECURSE
  "CMakeFiles/pcstall_models.dir/estimation.cc.o"
  "CMakeFiles/pcstall_models.dir/estimation.cc.o.d"
  "CMakeFiles/pcstall_models.dir/history_controller.cc.o"
  "CMakeFiles/pcstall_models.dir/history_controller.cc.o.d"
  "CMakeFiles/pcstall_models.dir/reactive_controller.cc.o"
  "CMakeFiles/pcstall_models.dir/reactive_controller.cc.o.d"
  "CMakeFiles/pcstall_models.dir/wave_estimator.cc.o"
  "CMakeFiles/pcstall_models.dir/wave_estimator.cc.o.d"
  "libpcstall_models.a"
  "libpcstall_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcstall_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
