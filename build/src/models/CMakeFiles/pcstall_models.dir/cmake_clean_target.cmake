file(REMOVE_RECURSE
  "libpcstall_models.a"
)
