# Empty compiler generated dependencies file for pcstall_models.
# This may be replaced when dependencies are built.
