
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/estimation.cc" "src/models/CMakeFiles/pcstall_models.dir/estimation.cc.o" "gcc" "src/models/CMakeFiles/pcstall_models.dir/estimation.cc.o.d"
  "/root/repo/src/models/history_controller.cc" "src/models/CMakeFiles/pcstall_models.dir/history_controller.cc.o" "gcc" "src/models/CMakeFiles/pcstall_models.dir/history_controller.cc.o.d"
  "/root/repo/src/models/reactive_controller.cc" "src/models/CMakeFiles/pcstall_models.dir/reactive_controller.cc.o" "gcc" "src/models/CMakeFiles/pcstall_models.dir/reactive_controller.cc.o.d"
  "/root/repo/src/models/wave_estimator.cc" "src/models/CMakeFiles/pcstall_models.dir/wave_estimator.cc.o" "gcc" "src/models/CMakeFiles/pcstall_models.dir/wave_estimator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcstall_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/pcstall_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/dvfs/CMakeFiles/pcstall_dvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pcstall_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcstall_power.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/pcstall_memory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
