file(REMOVE_RECURSE
  "libpcstall_dvfs.a"
)
