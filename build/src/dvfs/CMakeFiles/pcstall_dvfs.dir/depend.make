# Empty dependencies file for pcstall_dvfs.
# This may be replaced when dependencies are built.
