
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvfs/controller.cc" "src/dvfs/CMakeFiles/pcstall_dvfs.dir/controller.cc.o" "gcc" "src/dvfs/CMakeFiles/pcstall_dvfs.dir/controller.cc.o.d"
  "/root/repo/src/dvfs/hierarchical.cc" "src/dvfs/CMakeFiles/pcstall_dvfs.dir/hierarchical.cc.o" "gcc" "src/dvfs/CMakeFiles/pcstall_dvfs.dir/hierarchical.cc.o.d"
  "/root/repo/src/dvfs/objective.cc" "src/dvfs/CMakeFiles/pcstall_dvfs.dir/objective.cc.o" "gcc" "src/dvfs/CMakeFiles/pcstall_dvfs.dir/objective.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcstall_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/pcstall_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcstall_power.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pcstall_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/pcstall_memory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
