file(REMOVE_RECURSE
  "CMakeFiles/pcstall_dvfs.dir/controller.cc.o"
  "CMakeFiles/pcstall_dvfs.dir/controller.cc.o.d"
  "CMakeFiles/pcstall_dvfs.dir/hierarchical.cc.o"
  "CMakeFiles/pcstall_dvfs.dir/hierarchical.cc.o.d"
  "CMakeFiles/pcstall_dvfs.dir/objective.cc.o"
  "CMakeFiles/pcstall_dvfs.dir/objective.cc.o.d"
  "libpcstall_dvfs.a"
  "libpcstall_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcstall_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
