file(REMOVE_RECURSE
  "libpcstall_isa.a"
)
