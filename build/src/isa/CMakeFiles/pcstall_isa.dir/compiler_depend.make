# Empty compiler generated dependencies file for pcstall_isa.
# This may be replaced when dependencies are built.
