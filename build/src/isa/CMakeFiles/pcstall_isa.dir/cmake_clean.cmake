file(REMOVE_RECURSE
  "CMakeFiles/pcstall_isa.dir/kernel.cc.o"
  "CMakeFiles/pcstall_isa.dir/kernel.cc.o.d"
  "CMakeFiles/pcstall_isa.dir/kernel_builder.cc.o"
  "CMakeFiles/pcstall_isa.dir/kernel_builder.cc.o.d"
  "libpcstall_isa.a"
  "libpcstall_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcstall_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
