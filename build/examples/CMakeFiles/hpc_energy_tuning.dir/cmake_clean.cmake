file(REMOVE_RECURSE
  "CMakeFiles/hpc_energy_tuning.dir/hpc_energy_tuning.cpp.o"
  "CMakeFiles/hpc_energy_tuning.dir/hpc_energy_tuning.cpp.o.d"
  "hpc_energy_tuning"
  "hpc_energy_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_energy_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
