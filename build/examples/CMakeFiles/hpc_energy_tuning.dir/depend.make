# Empty dependencies file for hpc_energy_tuning.
# This may be replaced when dependencies are built.
