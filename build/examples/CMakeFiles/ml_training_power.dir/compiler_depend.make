# Empty compiler generated dependencies file for ml_training_power.
# This may be replaced when dependencies are built.
