file(REMOVE_RECURSE
  "CMakeFiles/ml_training_power.dir/ml_training_power.cpp.o"
  "CMakeFiles/ml_training_power.dir/ml_training_power.cpp.o.d"
  "ml_training_power"
  "ml_training_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_training_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
