
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_faults.cc" "tests/CMakeFiles/test_faults.dir/test_faults.cc.o" "gcc" "tests/CMakeFiles/test_faults.dir/test_faults.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pcstall_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcstall_core.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/pcstall_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pcstall_models.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/pcstall_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/pcstall_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pcstall_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/dvfs/CMakeFiles/pcstall_dvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcstall_power.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/pcstall_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/pcstall_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pcstall_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcstall_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
