# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_dvfs[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_predict[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
