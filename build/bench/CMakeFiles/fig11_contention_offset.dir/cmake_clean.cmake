file(REMOVE_RECURSE
  "CMakeFiles/fig11_contention_offset.dir/fig11_contention_offset.cc.o"
  "CMakeFiles/fig11_contention_offset.dir/fig11_contention_offset.cc.o.d"
  "CMakeFiles/fig11_contention_offset.dir/harness.cc.o"
  "CMakeFiles/fig11_contention_offset.dir/harness.cc.o.d"
  "fig11_contention_offset"
  "fig11_contention_offset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_contention_offset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
