# Empty compiler generated dependencies file for fig11_contention_offset.
# This may be replaced when dependencies are built.
