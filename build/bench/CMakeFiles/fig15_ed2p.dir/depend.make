# Empty dependencies file for fig15_ed2p.
# This may be replaced when dependencies are built.
