file(REMOVE_RECURSE
  "CMakeFiles/fig15_ed2p.dir/fig15_ed2p.cc.o"
  "CMakeFiles/fig15_ed2p.dir/fig15_ed2p.cc.o.d"
  "CMakeFiles/fig15_ed2p.dir/harness.cc.o"
  "CMakeFiles/fig15_ed2p.dir/harness.cc.o.d"
  "fig15_ed2p"
  "fig15_ed2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ed2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
