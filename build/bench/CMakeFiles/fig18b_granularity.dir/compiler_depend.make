# Empty compiler generated dependencies file for fig18b_granularity.
# This may be replaced when dependencies are built.
