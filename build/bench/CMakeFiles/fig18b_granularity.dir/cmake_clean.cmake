file(REMOVE_RECURSE
  "CMakeFiles/fig18b_granularity.dir/fig18b_granularity.cc.o"
  "CMakeFiles/fig18b_granularity.dir/fig18b_granularity.cc.o.d"
  "CMakeFiles/fig18b_granularity.dir/harness.cc.o"
  "CMakeFiles/fig18b_granularity.dir/harness.cc.o.d"
  "fig18b_granularity"
  "fig18b_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18b_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
