file(REMOVE_RECURSE
  "CMakeFiles/micro_predictor.dir/micro_predictor.cc.o"
  "CMakeFiles/micro_predictor.dir/micro_predictor.cc.o.d"
  "micro_predictor"
  "micro_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
