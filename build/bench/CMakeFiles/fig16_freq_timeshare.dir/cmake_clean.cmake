file(REMOVE_RECURSE
  "CMakeFiles/fig16_freq_timeshare.dir/fig16_freq_timeshare.cc.o"
  "CMakeFiles/fig16_freq_timeshare.dir/fig16_freq_timeshare.cc.o.d"
  "CMakeFiles/fig16_freq_timeshare.dir/harness.cc.o"
  "CMakeFiles/fig16_freq_timeshare.dir/harness.cc.o.d"
  "fig16_freq_timeshare"
  "fig16_freq_timeshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_freq_timeshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
