# Empty compiler generated dependencies file for fig16_freq_timeshare.
# This may be replaced when dependencies are built.
