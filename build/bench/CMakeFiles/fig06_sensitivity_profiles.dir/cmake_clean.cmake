file(REMOVE_RECURSE
  "CMakeFiles/fig06_sensitivity_profiles.dir/fig06_sensitivity_profiles.cc.o"
  "CMakeFiles/fig06_sensitivity_profiles.dir/fig06_sensitivity_profiles.cc.o.d"
  "CMakeFiles/fig06_sensitivity_profiles.dir/harness.cc.o"
  "CMakeFiles/fig06_sensitivity_profiles.dir/harness.cc.o.d"
  "fig06_sensitivity_profiles"
  "fig06_sensitivity_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_sensitivity_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
