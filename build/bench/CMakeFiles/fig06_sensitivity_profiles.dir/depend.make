# Empty dependencies file for fig06_sensitivity_profiles.
# This may be replaced when dependencies are built.
