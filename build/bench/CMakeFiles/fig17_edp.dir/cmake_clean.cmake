file(REMOVE_RECURSE
  "CMakeFiles/fig17_edp.dir/fig17_edp.cc.o"
  "CMakeFiles/fig17_edp.dir/fig17_edp.cc.o.d"
  "CMakeFiles/fig17_edp.dir/harness.cc.o"
  "CMakeFiles/fig17_edp.dir/harness.cc.o.d"
  "fig17_edp"
  "fig17_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
