# Empty dependencies file for fig17_edp.
# This may be replaced when dependencies are built.
