file(REMOVE_RECURSE
  "CMakeFiles/fig07_variability.dir/fig07_variability.cc.o"
  "CMakeFiles/fig07_variability.dir/fig07_variability.cc.o.d"
  "CMakeFiles/fig07_variability.dir/harness.cc.o"
  "CMakeFiles/fig07_variability.dir/harness.cc.o.d"
  "fig07_variability"
  "fig07_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
