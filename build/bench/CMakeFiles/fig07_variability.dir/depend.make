# Empty dependencies file for fig07_variability.
# This may be replaced when dependencies are built.
