# Empty dependencies file for fig01b_accuracy_vs_epoch.
# This may be replaced when dependencies are built.
