file(REMOVE_RECURSE
  "CMakeFiles/fig01b_accuracy_vs_epoch.dir/fig01b_accuracy_vs_epoch.cc.o"
  "CMakeFiles/fig01b_accuracy_vs_epoch.dir/fig01b_accuracy_vs_epoch.cc.o.d"
  "CMakeFiles/fig01b_accuracy_vs_epoch.dir/harness.cc.o"
  "CMakeFiles/fig01b_accuracy_vs_epoch.dir/harness.cc.o.d"
  "fig01b_accuracy_vs_epoch"
  "fig01b_accuracy_vs_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01b_accuracy_vs_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
