file(REMOVE_RECURSE
  "CMakeFiles/oracle_validation.dir/harness.cc.o"
  "CMakeFiles/oracle_validation.dir/harness.cc.o.d"
  "CMakeFiles/oracle_validation.dir/oracle_validation.cc.o"
  "CMakeFiles/oracle_validation.dir/oracle_validation.cc.o.d"
  "oracle_validation"
  "oracle_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
