# Empty dependencies file for oracle_validation.
# This may be replaced when dependencies are built.
