file(REMOVE_RECURSE
  "CMakeFiles/objective_study.dir/harness.cc.o"
  "CMakeFiles/objective_study.dir/harness.cc.o.d"
  "CMakeFiles/objective_study.dir/objective_study.cc.o"
  "CMakeFiles/objective_study.dir/objective_study.cc.o.d"
  "objective_study"
  "objective_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objective_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
