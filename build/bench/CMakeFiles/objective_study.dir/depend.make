# Empty dependencies file for objective_study.
# This may be replaced when dependencies are built.
