# Empty compiler generated dependencies file for fig05_linearity.
# This may be replaced when dependencies are built.
