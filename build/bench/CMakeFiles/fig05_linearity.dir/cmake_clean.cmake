file(REMOVE_RECURSE
  "CMakeFiles/fig05_linearity.dir/fig05_linearity.cc.o"
  "CMakeFiles/fig05_linearity.dir/fig05_linearity.cc.o.d"
  "CMakeFiles/fig05_linearity.dir/harness.cc.o"
  "CMakeFiles/fig05_linearity.dir/harness.cc.o.d"
  "fig05_linearity"
  "fig05_linearity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_linearity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
