# Empty compiler generated dependencies file for fig18a_energy_savings.
# This may be replaced when dependencies are built.
