file(REMOVE_RECURSE
  "CMakeFiles/fig18a_energy_savings.dir/fig18a_energy_savings.cc.o"
  "CMakeFiles/fig18a_energy_savings.dir/fig18a_energy_savings.cc.o.d"
  "CMakeFiles/fig18a_energy_savings.dir/harness.cc.o"
  "CMakeFiles/fig18a_energy_savings.dir/harness.cc.o.d"
  "fig18a_energy_savings"
  "fig18a_energy_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18a_energy_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
