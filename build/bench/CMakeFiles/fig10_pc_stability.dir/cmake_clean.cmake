file(REMOVE_RECURSE
  "CMakeFiles/fig10_pc_stability.dir/fig10_pc_stability.cc.o"
  "CMakeFiles/fig10_pc_stability.dir/fig10_pc_stability.cc.o.d"
  "CMakeFiles/fig10_pc_stability.dir/harness.cc.o"
  "CMakeFiles/fig10_pc_stability.dir/harness.cc.o.d"
  "fig10_pc_stability"
  "fig10_pc_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pc_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
