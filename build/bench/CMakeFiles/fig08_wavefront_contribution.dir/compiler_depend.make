# Empty compiler generated dependencies file for fig08_wavefront_contribution.
# This may be replaced when dependencies are built.
