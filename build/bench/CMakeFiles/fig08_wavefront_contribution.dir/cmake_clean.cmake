file(REMOVE_RECURSE
  "CMakeFiles/fig08_wavefront_contribution.dir/fig08_wavefront_contribution.cc.o"
  "CMakeFiles/fig08_wavefront_contribution.dir/fig08_wavefront_contribution.cc.o.d"
  "CMakeFiles/fig08_wavefront_contribution.dir/harness.cc.o"
  "CMakeFiles/fig08_wavefront_contribution.dir/harness.cc.o.d"
  "fig08_wavefront_contribution"
  "fig08_wavefront_contribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_wavefront_contribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
