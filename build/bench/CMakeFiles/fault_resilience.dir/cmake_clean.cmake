file(REMOVE_RECURSE
  "CMakeFiles/fault_resilience.dir/fault_resilience.cc.o"
  "CMakeFiles/fault_resilience.dir/fault_resilience.cc.o.d"
  "CMakeFiles/fault_resilience.dir/harness.cc.o"
  "CMakeFiles/fault_resilience.dir/harness.cc.o.d"
  "fault_resilience"
  "fault_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
