# Empty dependencies file for table3_designs.
# This may be replaced when dependencies are built.
