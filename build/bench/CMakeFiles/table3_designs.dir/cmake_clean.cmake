file(REMOVE_RECURSE
  "CMakeFiles/table3_designs.dir/harness.cc.o"
  "CMakeFiles/table3_designs.dir/harness.cc.o.d"
  "CMakeFiles/table3_designs.dir/table3_designs.cc.o"
  "CMakeFiles/table3_designs.dir/table3_designs.cc.o.d"
  "table3_designs"
  "table3_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
