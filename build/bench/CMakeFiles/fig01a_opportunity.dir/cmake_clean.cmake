file(REMOVE_RECURSE
  "CMakeFiles/fig01a_opportunity.dir/fig01a_opportunity.cc.o"
  "CMakeFiles/fig01a_opportunity.dir/fig01a_opportunity.cc.o.d"
  "CMakeFiles/fig01a_opportunity.dir/harness.cc.o"
  "CMakeFiles/fig01a_opportunity.dir/harness.cc.o.d"
  "fig01a_opportunity"
  "fig01a_opportunity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01a_opportunity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
