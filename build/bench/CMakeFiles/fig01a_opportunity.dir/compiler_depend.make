# Empty compiler generated dependencies file for fig01a_opportunity.
# This may be replaced when dependencies are built.
