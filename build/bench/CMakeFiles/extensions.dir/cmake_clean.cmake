file(REMOVE_RECURSE
  "CMakeFiles/extensions.dir/extensions.cc.o"
  "CMakeFiles/extensions.dir/extensions.cc.o.d"
  "CMakeFiles/extensions.dir/harness.cc.o"
  "CMakeFiles/extensions.dir/harness.cc.o.d"
  "extensions"
  "extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
