/** @file Unit tests for src/core: the PCSTALL controller. */

#include <gtest/gtest.h>

#include "expect_fatal.hh"

#include <memory>

#include "core/pcstall_controller.hh"
#include "sim/experiment.hh"
#include "gpu/gpu_chip.hh"
#include "isa/kernel_builder.hh"

using namespace pcstall;
using namespace pcstall::core;

namespace
{

/** Build a tiny loop app, run one epoch, return chip + record. */
struct Fixture
{
    std::shared_ptr<const isa::Application> app;
    std::unique_ptr<gpu::GpuChip> chip;
    gpu::EpochRecord record;
    std::vector<gpu::WaveSnapshot> snaps;

    explicit Fixture(bool memory_bound)
    {
        isa::KernelBuilder b("k");
        const auto r = b.region("data", 128 << 20);
        b.grid(16, 4);
        b.loop(1000);
        if (memory_bound) {
            b.load(r, isa::AccessPattern::Random);
            b.load(r, isa::AccessPattern::Random);
            b.load(r, isa::AccessPattern::Random);
            b.load(r, isa::AccessPattern::Random);
            b.waitcnt(0);
            b.salu(1);
        } else {
            b.valu(4, 10);
        }
        b.endLoop();
        auto a = std::make_shared<isa::Application>();
        a->name = memory_bound ? "mem" : "comp";
        a->launches.push_back(b.build());
        a->assignCodeBases();
        app = a;

        gpu::GpuConfig cfg;
        cfg.numCus = 2;
        cfg.waveSlotsPerCu = 8;
        chip = std::make_unique<gpu::GpuChip>(cfg, app);
        chip->runUntil(tickUs);
        record = chip->harvestEpoch(0);
        snaps = chip->waveSnapshots();
    }
};

} // namespace

TEST(PcstallConfig, ForEpochScalesQuantization)
{
    const auto cfg1 = PcstallConfig::forEpoch(tickUs);
    const auto cfg50 = PcstallConfig::forEpoch(50 * tickUs);
    EXPECT_GT(cfg50.table.maxSensitivity, cfg1.table.maxSensitivity);
    EXPECT_EQ(cfg1.estimator.waveSlots, 40u);
}

TEST(PcstallController, NameReflectsMode)
{
    PcstallConfig cfg;
    EXPECT_EQ(PcstallController(cfg, 2).name(), "PCSTALL");
    cfg.accurateEstimates = true;
    EXPECT_EQ(PcstallController(cfg, 2).name(), "ACCPC");
}

TEST(PcstallController, SweepNeeds)
{
    PcstallConfig cfg;
    EXPECT_EQ(PcstallController(cfg, 2).sweepNeed(),
              dvfs::SweepNeed::None);
    cfg.accurateEstimates = true;
    EXPECT_EQ(PcstallController(cfg, 2).sweepNeed(),
              dvfs::SweepNeed::Elapsed);
    EXPECT_TRUE(PcstallController(cfg, 2).needsWaveLevel());
}

TEST(PcstallController, StorageScalesWithSharing)
{
    PcstallConfig cfg;
    cfg.cusPerTable = 1;
    const auto per_cu = PcstallController(cfg, 4).storageBytes();
    cfg.cusPerTable = 4;
    const auto shared = PcstallController(cfg, 4).storageBytes();
    EXPECT_EQ(per_cu, 4 * shared);
}

TEST(PcstallController, DecidesForEveryDomain)
{
    Fixture f(false);
    const dvfs::DomainMap domains(2, 1);
    const power::VfTable table = power::VfTable::paperTable();
    gpu::GpuConfig scaled_gpu;
    power::PowerParams scaled_power;
    sim::scaleToCus(scaled_gpu, scaled_power, 2);
    const power::PowerModel pm(scaled_power);
    dvfs::EpochContext ctx{f.record, f.snaps, domains, table, pm,
                           tickUs, 45.0, dvfs::Objective::Ed2p, 0.05,
                           4, nullptr, nullptr};
    PcstallController c(PcstallConfig::forEpoch(tickUs, 8), 2);
    const auto decisions = c.decide(ctx);
    ASSERT_EQ(decisions.size(), 2u);
    for (const auto &d : decisions) {
        EXPECT_LT(d.state, table.numStates());
        EXPECT_GE(d.predictedInstr, 0.0);
    }
}

TEST(PcstallController, ComputeBoundPrefersHigherStateThanMemoryBound)
{
    const power::VfTable table = power::VfTable::paperTable();
    gpu::GpuConfig scaled_gpu;
    power::PowerParams scaled_power;
    sim::scaleToCus(scaled_gpu, scaled_power, 2);
    const power::PowerModel pm(scaled_power);
    const dvfs::DomainMap domains(2, 1);

    auto decide = [&](Fixture &f) {
        dvfs::EpochContext ctx{f.record, f.snaps, domains, table, pm,
                               tickUs, 45.0, dvfs::Objective::Ed2p,
                               0.05, 4, nullptr, nullptr};
        PcstallController c(PcstallConfig::forEpoch(tickUs, 8), 2);
        // Two epochs of warm-up so the table has entries.
        c.decide(ctx);
        return c.decide(ctx);
    };

    Fixture comp(false);
    Fixture mem(true);
    const auto comp_dec = decide(comp);
    const auto mem_dec = decide(mem);
    EXPECT_GT(comp_dec[0].state, mem_dec[0].state);
    EXPECT_LE(mem_dec[0].state, 2u);
}

TEST(PcstallController, TableHitRatioGrowsWithReuse)
{
    // Drive several real epochs: waves start epochs at varied PCs, so
    // the table fills and later lookups mostly hit.
    Fixture f(false);
    const dvfs::DomainMap domains(2, 1);
    const power::VfTable table = power::VfTable::paperTable();
    const power::PowerModel pm;
    PcstallController c(PcstallConfig::forEpoch(tickUs, 8), 2);
    for (int epoch = 1; epoch <= 8; ++epoch) {
        f.chip->runUntil((1 + epoch) * tickUs);
        const gpu::EpochRecord rec = f.chip->harvestEpoch(epoch * tickUs);
        const auto snaps = f.chip->waveSnapshots();
        dvfs::EpochContext ctx{rec, snaps, domains, table, pm, tickUs,
                               45.0, dvfs::Objective::Ed2p, 0.05, 4,
                               nullptr, nullptr};
        c.decide(ctx);
    }
    EXPECT_GT(c.tableHitRatio(), 0.3);
}

using PcstallDeath = ::testing::Test;

TEST(PcstallDeath, RejectsUnevenTableSharing)
{
    PcstallConfig cfg;
    cfg.cusPerTable = 3;
    EXPECT_FATAL(PcstallController(cfg, 4), "divide evenly");
}

TEST(PcstallController, AdaptiveContentionLearnsSkew)
{
    // Feed an epoch record with a strong age-rank throughput skew and
    // verify the learned contention factors reflect it.
    const power::VfTable table = power::VfTable::paperTable();
    gpu::GpuConfig scaled_gpu;
    power::PowerParams scaled_power;
    sim::scaleToCus(scaled_gpu, scaled_power, 1);
    const power::PowerModel pm(scaled_power);
    const dvfs::DomainMap domains(1, 1);

    gpu::EpochRecord record;
    record.cus.resize(1);
    record.cus[0].committed = 1000;
    record.cus[0].freq = 1'700 * freqMHz;
    for (std::uint32_t age = 0; age < 8; ++age) {
        gpu::WaveEpochRecord w;
        w.cu = 0;
        w.slot = age;
        w.ageRank = age;
        w.committed = age < 4 ? 200 : 20; // old waves dominate
        w.active = true;
        record.waves.push_back(w);
    }
    std::vector<gpu::WaveSnapshot> snaps;
    dvfs::EpochContext ctx{record, snaps, domains, table, pm, tickUs,
                           45.0, dvfs::Objective::Ed2p, 0.05, 4,
                           nullptr, nullptr};

    PcstallConfig cfg = PcstallConfig::forEpoch(tickUs, 8);
    PcstallController c(cfg, 1);
    c.decide(ctx);
    EXPECT_NEAR(c.contention(0), 1.0, 0.05);
    EXPECT_NEAR(c.contention(7), 0.1, 0.05);
    EXPECT_GT(c.contention(2), c.contention(6));
}

TEST(PcstallController, AdaptiveContentionCanBeDisabled)
{
    PcstallConfig cfg = PcstallConfig::forEpoch(tickUs, 8);
    cfg.adaptiveContention = false;
    PcstallController c(cfg, 1);
    // Falls back to the static linear model.
    EXPECT_NEAR(c.contention(0), 1.0, 1e-9);
    EXPECT_NEAR(c.contention(7),
                models::contentionFactor(cfg.estimator, 7), 1e-9);
}

TEST(PcstallController, StorageGrowsWithLevelField)
{
    PcstallConfig with_level = PcstallConfig::forEpoch(tickUs, 8);
    PcstallConfig slope_only = with_level;
    slope_only.table.storeLevel = false;
    EXPECT_EQ(PcstallController(with_level, 1).storageBytes(),
              2 * PcstallController(slope_only, 1).storageBytes());
}

namespace
{

/** Hand-built single-wave context for white-box predictor checks. */
struct MiniCtx
{
    gpu::EpochRecord record;
    std::vector<gpu::WaveSnapshot> snaps;
    dvfs::DomainMap domains{1, 1};
    power::VfTable table = power::VfTable::paperTable();
    power::PowerModel pm{[] {
        power::PowerParams p;
        p.memStatic = 1.0; // single-CU scale
        return p;
    }()};

    MiniCtx(std::uint64_t start_pc_addr, std::uint64_t cur_pc_addr,
            std::uint64_t committed, Tick stall)
    {
        record.start = 0;
        record.end = tickUs;
        record.cus.resize(1);
        record.cus[0].committed = committed;
        record.cus[0].freq = 1'700 * freqMHz;
        gpu::WaveEpochRecord w;
        w.cu = 0;
        w.slot = 0;
        w.startPcAddr = start_pc_addr;
        w.committed = committed;
        w.memStall = stall;
        w.active = true;
        record.waves.push_back(w);

        gpu::WaveSnapshot s;
        s.cu = 0;
        s.slot = 0;
        s.pcAddr = cur_pc_addr;
        s.ageRank = 0;
        snaps.push_back(s);
    }

    dvfs::EpochContext
    ctx()
    {
        return dvfs::EpochContext{record, snaps, domains, table, pm,
                                  tickUs, 45.0, dvfs::Objective::Ed2p,
                                  0.05, 4, nullptr, nullptr};
    }
};

} // namespace

TEST(PcstallController, RegionGateUsesOwnModelInsideGranule)
{
    // Seed the table at granule 0x200 with a *memory* phase, then
    // present a wave whose elapsed epoch was pure compute and whose
    // PC is still in its own granule (0x100): the wave's own fresh
    // model must win, predicting a steep I(f).
    PcstallConfig cfg = PcstallConfig::forEpoch(tickUs, 8);
    PcstallController c(cfg, 1);

    MiniCtx seed(0x1040, 0x1044, 100, tickUs * 9 / 10); // memory entry
    c.decide(seed.ctx());

    MiniCtx compute(0x1000, 0x1004, 3000, 0); // compute, same granule
    auto ctx = compute.ctx();
    const auto d = c.decide(ctx);
    // Steep model: prediction at the chosen (high) state well above
    // the elapsed count would only come from the wave's own model.
    EXPECT_GE(d[0].state, 5u);
}

TEST(PcstallController, RegionGateUsesTableAcrossGranules)
{
    // Teach the table that granule 0x3000 is a memory phase; then a
    // compute wave *arriving* at 0x3000 must predict the memory
    // phase (low state) despite its own steep last-epoch model.
    PcstallConfig cfg = PcstallConfig::forEpoch(tickUs, 8);
    PcstallController c(cfg, 1);

    MiniCtx teach(0x1040, 0x1044, 120, tickUs * 9 / 10);
    c.decide(teach.ctx());
    c.decide(teach.ctx()); // blend a second update

    MiniCtx arriving(0x1000, 0x1044, 3000, 0);
    auto ctx = arriving.ctx();
    const auto d = c.decide(ctx);
    EXPECT_LE(d[0].state, 2u);
    // And the prediction level resembles the taught phase, not the
    // wave's own 3000-instruction epoch.
    EXPECT_LT(d[0].predictedInstr, 1000.0);
}

TEST(PcstallController, RegionGateAblationFallsBackToTable)
{
    // With lookupOnRegionChange disabled, the table is consulted even
    // inside the granule, so a stale entry overrides the fresh model.
    PcstallConfig cfg = PcstallConfig::forEpoch(tickUs, 8);
    cfg.lookupOnRegionChange = false;
    PcstallController c(cfg, 1);

    MiniCtx teach(0x1000, 0x1004, 120, tickUs * 9 / 10);
    c.decide(teach.ctx());
    c.decide(teach.ctx());

    MiniCtx compute(0x1000, 0x1004, 3000, 0);
    auto ctx = compute.ctx();
    const auto d = c.decide(ctx);
    // The mixture (blended stale memory entry + new compute update)
    // pulls the prediction well below the pure compute model.
    EXPECT_LT(d[0].predictedInstr, 3000.0);
}
