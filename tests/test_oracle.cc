/** @file Unit tests for src/oracle: fork-pre-execute + controllers. */

#include <gtest/gtest.h>

#include <memory>

#include "gpu/gpu_chip.hh"
#include "isa/kernel_builder.hh"
#include "oracle/fork_pre_execute.hh"
#include "oracle/oracle_controllers.hh"
#include "sim/experiment.hh"

using namespace pcstall;
using namespace pcstall::oracle;

namespace
{

std::shared_ptr<const isa::Application>
mixedApp()
{
    isa::KernelBuilder b("mixed");
    const auto r = b.region("data", 32 << 20);
    b.grid(16, 4);
    b.loop(500);
    b.load(r, isa::AccessPattern::Streaming, 16);
    b.waitcnt(0);
    b.valu(4, 8);
    b.endLoop();
    auto app = std::make_shared<isa::Application>();
    app->name = "mixed";
    app->launches.push_back(b.build());
    app->assignCodeBases();
    return app;
}

std::shared_ptr<const isa::Application>
computeApp()
{
    isa::KernelBuilder b("comp");
    b.grid(16, 4);
    b.loop(2000);
    b.valu(4, 8);
    b.endLoop();
    auto app = std::make_shared<isa::Application>();
    app->name = "comp";
    app->launches.push_back(b.build());
    app->assignCodeBases();
    return app;
}

gpu::GpuConfig
smallGpu()
{
    gpu::GpuConfig cfg;
    cfg.numCus = 2;
    cfg.waveSlotsPerCu = 8;
    return cfg;
}

} // namespace

TEST(ForkPreExecute, FillsEveryDomainStateCell)
{
    gpu::GpuChip chip(smallGpu(), mixedApp());
    chip.runUntil(tickUs);
    chip.harvestEpoch(0);

    const dvfs::DomainMap domains(2, 1);
    const power::VfTable table = power::VfTable::paperTable();
    const auto est = forkPreExecuteSweep(chip, domains, table, tickUs);

    ASSERT_EQ(est.domainInstr.size(), 2u);
    for (const auto &row : est.domainInstr) {
        ASSERT_EQ(row.size(), table.numStates());
        for (double v : row)
            EXPECT_GT(v, 0.0);
    }
}

TEST(ForkPreExecute, LeavesOriginalUntouched)
{
    gpu::GpuChip chip(smallGpu(), mixedApp());
    chip.runUntil(tickUs);
    chip.harvestEpoch(0);
    const auto committed_before = chip.totalCommitted();
    const Tick now_before = chip.now();

    const dvfs::DomainMap domains(2, 1);
    forkPreExecuteSweep(chip, domains, power::VfTable::paperTable(),
                        tickUs);
    EXPECT_EQ(chip.totalCommitted(), committed_before);
    EXPECT_EQ(chip.now(), now_before);
}

TEST(ForkPreExecute, ComputeBoundInstrGrowsWithFrequency)
{
    gpu::GpuChip chip(smallGpu(), computeApp());
    chip.runUntil(tickUs);
    chip.harvestEpoch(0);

    const dvfs::DomainMap domains(2, 1);
    const power::VfTable table = power::VfTable::paperTable();
    const auto est = forkPreExecuteSweep(chip, domains, table, tickUs);
    const auto fit = domainSensitivity(est, table, 0);
    EXPECT_GT(fit.sensitivity, 0.0);
    EXPECT_GT(fit.r2, 0.9); // near-linear for pure compute
    // 1 instr per cycle upper bound: sensitivity approx cycles/GHz.
    EXPECT_GT(est.domainInstr[0][9], est.domainInstr[0][0]);
}

TEST(ForkPreExecute, WaveLevelSensitivitiesRegressed)
{
    gpu::GpuChip chip(smallGpu(), computeApp());
    chip.runUntil(tickUs);
    chip.harvestEpoch(0);

    const dvfs::DomainMap domains(2, 1);
    const power::VfTable table = power::VfTable::paperTable();
    const auto est = forkPreExecuteSweep(chip, domains, table, tickUs);
    ASSERT_FALSE(est.waves.empty());
    double positive = 0;
    for (const auto &w : est.waves) {
        EXPECT_LT(w.cu, 2u);
        if (w.sensitivity > 0.0)
            ++positive;
    }
    // Most waves of a compute kernel are frequency sensitive.
    EXPECT_GT(positive / static_cast<double>(est.waves.size()), 0.6);
}

TEST(ForkPreExecute, WaveLevelCanBeDisabled)
{
    gpu::GpuChip chip(smallGpu(), computeApp());
    chip.runUntil(tickUs);
    chip.harvestEpoch(0);
    const dvfs::DomainMap domains(2, 1);
    SweepOptions opts;
    opts.waveLevel = false;
    const auto est = forkPreExecuteSweep(
        chip, domains, power::VfTable::paperTable(), tickUs, opts);
    EXPECT_TRUE(est.waves.empty());
    EXPECT_FALSE(est.empty());
}

TEST(ForkPreExecute, ShuffleOffStillFillsMatrix)
{
    gpu::GpuChip chip(smallGpu(), mixedApp());
    chip.runUntil(tickUs);
    chip.harvestEpoch(0);
    const dvfs::DomainMap domains(2, 1);
    SweepOptions opts;
    opts.shuffle = false;
    const auto est = forkPreExecuteSweep(
        chip, domains, power::VfTable::paperTable(), tickUs, opts);
    for (const auto &row : est.domainInstr)
        for (double v : row)
            EXPECT_GT(v, 0.0);
}

TEST(ForkPreExecute, SamplingAccuracyIsHigh)
{
    // The paper reports 97.6% agreement between sampled and
    // re-executed performance. Validate the same way: predict the
    // epoch's instructions at the current frequency from the sweep,
    // then actually run the epoch and compare.
    gpu::GpuChip chip(smallGpu(), mixedApp());
    chip.runUntil(tickUs);
    chip.harvestEpoch(0);

    const dvfs::DomainMap domains(2, 1);
    const power::VfTable table = power::VfTable::paperTable();
    const auto est = forkPreExecuteSweep(chip, domains, table, tickUs);

    const int nominal = table.indexOf(1'700 * freqMHz);
    ASSERT_GE(nominal, 0);

    gpu::GpuChip real = chip;
    real.runUntil(chip.now() + tickUs);
    const auto rec = real.harvestEpoch(chip.now());

    for (std::uint32_t d = 0; d < 2; ++d) {
        const double predicted =
            est.domainInstr[d][static_cast<std::size_t>(nominal)];
        const double actual =
            static_cast<double>(rec.cus[d].committed);
        ASSERT_GT(actual, 0.0);
        EXPECT_NEAR(predicted / actual, 1.0, 0.10);
    }
}

TEST(OracleControllers, RequireTheirEstimates)
{
    OracleController oracle;
    EXPECT_EQ(oracle.sweepNeed(), dvfs::SweepNeed::Upcoming);
    AccurateReactiveController accreac;
    EXPECT_EQ(accreac.sweepNeed(), dvfs::SweepNeed::Elapsed);
    EXPECT_EQ(oracle.name(), "ORACLE");
    EXPECT_EQ(accreac.name(), "ACCREAC");
}

TEST(OracleControllers, DecideFromAccuratePicksSensibleStates)
{
    const power::VfTable table = power::VfTable::paperTable();
    gpu::GpuConfig scaled_gpu;
    power::PowerParams scaled_power;
    sim::scaleToCus(scaled_gpu, scaled_power, 2);
    const power::PowerModel pm(scaled_power);
    const dvfs::DomainMap domains(2, 1);

    gpu::EpochRecord record;
    record.cus.resize(2);
    record.cus[0].committed = 1000;
    record.cus[0].freq = 1'700 * freqMHz;
    record.cus[1].committed = 1000;
    record.cus[1].freq = 1'700 * freqMHz;
    std::vector<gpu::WaveSnapshot> snaps;

    dvfs::AccurateEstimates est;
    est.domainInstr.resize(2);
    for (std::size_t s = 0; s < table.numStates(); ++s) {
        // Domain 0 compute-bound, domain 1 memory-bound.
        est.domainInstr[0].push_back(
            1000.0 * freqGHzD(table.state(s).freq) / 1.7);
        est.domainInstr[1].push_back(600.0 + s);
    }

    dvfs::EpochContext ctx{record, snaps, domains, table, pm, tickUs,
                           45.0, dvfs::Objective::Ed2p, 0.05, 4,
                           &est, &est};
    const auto decisions = decideFromAccurate(ctx, est);
    ASSERT_EQ(decisions.size(), 2u);
    EXPECT_GT(decisions[0].state, decisions[1].state);
    EXPECT_LE(decisions[1].state, 2u);
}

TEST(ForkPreExecute, WaveLevelIncludesLevelIntercept)
{
    gpu::GpuChip chip(smallGpu(), mixedApp());
    chip.runUntil(tickUs);
    chip.harvestEpoch(0);
    const dvfs::DomainMap domains(2, 1);
    const power::VfTable table = power::VfTable::paperTable();
    const auto est = forkPreExecuteSweep(chip, domains, table, tickUs);
    ASSERT_FALSE(est.waves.empty());
    // Level = regression intercept, clamped non-negative; for a
    // mixed workload some waves must carry a positive floor.
    bool any_positive_level = false;
    for (const auto &w : est.waves) {
        EXPECT_GE(w.level, 0.0);
        any_positive_level |= w.level > 0.0;
    }
    EXPECT_TRUE(any_positive_level);
}

TEST(ForkPreExecute, DomainSensitivityFitExposesIntercept)
{
    gpu::GpuChip chip(smallGpu(), computeApp());
    chip.runUntil(tickUs);
    chip.harvestEpoch(0);
    const dvfs::DomainMap domains(2, 1);
    const power::VfTable table = power::VfTable::paperTable();
    const auto est = forkPreExecuteSweep(chip, domains, table, tickUs);
    const auto fit = domainSensitivity(est, table, 0);
    // Pure compute: the I(f) line passes near the origin, so the
    // predicted value at 1.7 GHz is close to slope * 1.7.
    const double at_nominal = fit.intercept + fit.sensitivity * 1.7;
    EXPECT_NEAR(at_nominal, est.domainInstr[0][4],
                0.1 * est.domainInstr[0][4]);
}
