/**
 * @file
 * Restore-exactness grid for the dirty-region delta snapshot path
 * (docs/performance.md). The delta restore is an optimization with a
 * proof obligation: a slot chip restored through the dirty-region
 * path must be byte-identical (same stateFingerprint(), same
 * downstream decisions, metrics and traces) to one restored by full
 * copy-assign and to a fresh deep copy of the base chip - at every
 * epoch boundary, before and after pre-executing the sampled epoch at
 * perturbed frequencies, across workloads and controllers, and under
 * fault injection with parity-scrubbed predictor tables.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dvfs/hierarchical.hh"
#include "gpu/gpu_chip.hh"
#include "harness.hh"
#include "oracle/snapshot_pool.hh"
#include "power/vf_table.hh"
#include "sim/experiment.hh"

using namespace pcstall;

namespace
{

bench::BenchOptions
smallOpts()
{
    bench::BenchOptions opts;
    opts.cus = 4;
    opts.scale = 0.125;
    opts.collectTrace = true;
    return opts;
}

/** The workloads the grid runs over (ISSUE: three). */
const std::vector<std::string> kWorkloads = {"comd", "lulesh",
                                             "minife"};

/** The controllers of the end-to-end identity matrix. */
const std::vector<std::string> kControllers = {
    "STALL", "PCSTALL", "PCSTALL+CAP", "ORACLE"};

/** Exact field-by-field RunResult comparison (no tolerances). */
void
expectIdenticalResults(const sim::RunResult &a, const sim::RunResult &b,
                       const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.predictionAccuracy, b.predictionAccuracy);
    EXPECT_EQ(a.transitions, b.transitions);
    EXPECT_EQ(a.transitionEnergy, b.transitionEnergy);
    EXPECT_EQ(a.freqTimeShare, b.freqTimeShare);
    EXPECT_EQ(a.finalTemperature, b.finalTemperature);
    EXPECT_EQ(a.faults.tableBitFlips, b.faults.tableBitFlips);
    EXPECT_EQ(a.faults.tableScrubs, b.faults.tableScrubs);
    EXPECT_EQ(a.faults.transitionFailures, b.faults.transitionFailures);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].start, b.trace[i].start);
        EXPECT_EQ(a.trace[i].domainState, b.trace[i].domainState);
        EXPECT_EQ(a.trace[i].domainCommitted,
                  b.trace[i].domainCommitted);
    }
}

sim::RunResult
runCell(const std::string &workload, const std::string &controller,
        sim::OracleMode mode,
        const faults::FaultConfig *fault_cfg = nullptr,
        bool ecc_tables = false)
{
    const bench::BenchOptions opts = smallOpts();
    const auto app = bench::makeApp(workload, opts);
    EXPECT_TRUE(app);
    sim::RunConfig cfg = opts.runConfig();
    cfg.oracleMode = mode;
    if (fault_cfg != nullptr)
        cfg.faults = *fault_cfg;
    cfg.eccProtectTables = ecc_tables;
    sim::ExperimentDriver driver(cfg);
    // "PCSTALL+CAP" is not a registry name: it is the hierarchical
    // power manager wrapped around PCSTALL (bench/extensions.cc).
    std::unique_ptr<dvfs::DvfsController> ctrl;
    if (controller == "PCSTALL+CAP") {
        dvfs::HierarchicalConfig hcfg;
        hcfg.powerCap = 40.0;
        hcfg.reviewEpochs = 10;
        ctrl = std::make_unique<dvfs::HierarchicalPowerManager>(
            bench::makeController("PCSTALL", cfg), hcfg);
    } else {
        ctrl = bench::makeController(controller, cfg);
    }
    return driver.run(app, *ctrl);
}

} // namespace

// --- per-epoch fingerprint grid -------------------------------------

/**
 * Drive a base chip epoch by epoch; at every boundary restore each
 * V/f sample slot three ways (delta pool, full pool, fresh deep copy),
 * pin per-CU frequencies to a perturbed pattern, pre-execute the
 * upcoming epoch on all three chips, and demand fingerprint equality
 * at every step. The first sweep full-restores (pre-warm anchors the
 * chain); later sweeps must be served by the delta path.
 */
TEST(SnapshotDelta, DeltaFullAndFreshCopyAgreeEveryEpoch)
{
    const power::VfTable table = power::VfTable::paperTable();
    const std::size_t num_states = table.numStates();

    for (const std::string &workload : kWorkloads) {
        SCOPED_TRACE(workload);
        const bench::BenchOptions opts = smallOpts();
        const auto app = bench::makeApp(workload, opts);
        ASSERT_TRUE(app);
        gpu::GpuConfig gcfg = opts.runConfig().gpu;
        gpu::GpuChip chip(gcfg, app);

        oracle::SnapshotPool delta_pool;
        delta_pool.setDeltaRestore(true);
        oracle::SnapshotPool full_pool;
        full_pool.setDeltaRestore(false);

        gpu::EpochRecord scratch;
        gpu::EpochRecord delta_rec, full_rec, copy_rec;
        Tick t = 0;
        const int epochs = 4;
        for (int e = 0; e < epochs; ++e) {
            SCOPED_TRACE("epoch " + std::to_string(e));
            chip.runUntil(t + opts.epochLen);
            chip.harvestEpoch(t, scratch);
            t += opts.epochLen;

            const std::uint64_t base_fp = chip.stateFingerprint();
            delta_pool.ensureSlots(num_states, chip);
            delta_pool.beginSweep(chip);
            full_pool.ensureSlots(num_states, chip);
            full_pool.beginSweep(chip);

            for (std::size_t k = 0; k < num_states; ++k) {
                SCOPED_TRACE("state " + std::to_string(k));
                gpu::GpuChip &d = delta_pool.restore(k, chip);
                gpu::GpuChip &f = full_pool.restore(k, chip);
                gpu::GpuChip c = chip;

                // All three restores reproduce the base exactly.
                ASSERT_EQ(d.stateFingerprint(), base_fp);
                ASSERT_EQ(f.stateFingerprint(), base_fp);
                ASSERT_EQ(c.stateFingerprint(), base_fp);

                // Perturb per-CU frequencies (shuffled per CU, like
                // the sweep's per-domain shuffle) and pre-execute the
                // upcoming epoch on each chip independently.
                for (std::uint32_t cu = 0; cu < gcfg.numCus; ++cu) {
                    const Freq freq =
                        table.state((k + cu) % num_states).freq;
                    d.setCuFrequency(cu, freq, 0);
                    f.setCuFrequency(cu, freq, 0);
                    c.setCuFrequency(cu, freq, 0);
                }
                d.runUntil(t + opts.epochLen);
                d.harvestEpoch(t, delta_rec);
                f.runUntil(t + opts.epochLen);
                f.harvestEpoch(t, full_rec);
                c.runUntil(t + opts.epochLen);
                c.harvestEpoch(t, copy_rec);

                // ... and still agree after diverging from the base.
                const std::uint64_t after = c.stateFingerprint();
                ASSERT_EQ(d.stateFingerprint(), after);
                ASSERT_EQ(f.stateFingerprint(), after);
                EXPECT_EQ(delta_rec.cus.size(), copy_rec.cus.size());
                for (std::size_t cu = 0; cu < copy_rec.cus.size();
                     ++cu) {
                    EXPECT_EQ(delta_rec.cus[cu].committed,
                              copy_rec.cus[cu].committed);
                    EXPECT_EQ(full_rec.cus[cu].committed,
                              copy_rec.cus[cu].committed);
                }
            }

            // The sweeps never touch the base chip.
            ASSERT_EQ(chip.stateFingerprint(), base_fp);
        }

        // Prove the paths actually taken: the full pool never
        // delta-restores; the delta pool serves every sweep after the
        // first (anchored by the pre-warm) from the delta path.
        EXPECT_EQ(full_pool.deltaRestores(), 0u);
        EXPECT_GE(delta_pool.deltaRestores(),
                  static_cast<std::uint64_t>(epochs - 1) * num_states);
    }
}

// --- end-to-end identity matrix -------------------------------------

/**
 * Copy vs Pool (delta) vs PoolFull must be indistinguishable in every
 * observable run output across the workload x controller grid. For
 * controllers that never invoke the oracle the modes are trivially
 * identical; ORACLE exercises the pool every epoch.
 */
TEST(SnapshotDelta, OracleModeIsInvisibleAcrossWorkloadsAndControllers)
{
    for (const std::string &workload : kWorkloads) {
        for (const std::string &controller : kControllers) {
            const auto copy =
                runCell(workload, controller, sim::OracleMode::Copy);
            const auto pool =
                runCell(workload, controller, sim::OracleMode::Pool);
            const auto pool_full = runCell(workload, controller,
                                           sim::OracleMode::PoolFull);
            expectIdenticalResults(copy, pool,
                                   workload + "/" + controller +
                                       "/delta");
            expectIdenticalResults(copy, pool_full,
                                   workload + "/" + controller +
                                       "/pool-full");
        }
    }
}

// --- fault injection ------------------------------------------------

/**
 * Parity-scrubbed (ECC) predictor tables under storage fault
 * injection: bit upsets land in the PC table, lookups scrub the
 * corrupted entries, and the snapshot mode still must not leak into
 * any observable - the injector's random streams are driven by the
 * epoch sequence, not by how the oracle restores its scratch chips.
 * ACCPC both trains its tables from pooled oracle sweeps and takes
 * the storage upsets, so this run crosses the two subsystems.
 */
TEST(SnapshotDelta, EccScrubbedFaultRunsAreModeInvariant)
{
    faults::FaultConfig faults;
    faults.storage.enabled = true;
    faults.storage.upsetsPerEpoch = 64.0;

    const auto copy = runCell("comd", "ACCPC", sim::OracleMode::Copy,
                              &faults, true);
    const auto pool = runCell("comd", "ACCPC", sim::OracleMode::Pool,
                              &faults, true);
    const auto pool_full = runCell(
        "comd", "ACCPC", sim::OracleMode::PoolFull, &faults, true);

    // The fault campaign really ran: bits flipped, and parity caught
    // at least one corrupted entry before it could mispredict.
    EXPECT_GT(copy.faults.tableBitFlips, 0u);
    EXPECT_GT(copy.faults.tableScrubs, 0u);

    expectIdenticalResults(copy, pool, "ecc/delta");
    expectIdenticalResults(copy, pool_full, "ecc/pool-full");
}
