/**
 * @file
 * Cross-module property tests: invariants that must hold across
 * parameter sweeps (frequencies, epoch lengths, table geometries,
 * scheduler configurations), exercised with parameterized gtest.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/pcstall_controller.hh"
#include "gpu/gpu_chip.hh"
#include "isa/kernel_builder.hh"
#include "models/estimation.hh"
#include "oracle/fork_pre_execute.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

using namespace pcstall;

namespace
{

std::shared_ptr<const isa::Application>
mixedApp(std::uint32_t trips = 300)
{
    isa::KernelBuilder b("mixed");
    const auto r = b.region("data", 32 << 20);
    b.grid(16, 4);
    b.loop(trips);
    b.load(r, isa::AccessPattern::Streaming, 16);
    b.waitcnt(0);
    b.valu(4, 6);
    b.endLoop();
    auto app = std::make_shared<isa::Application>();
    app->name = "mixed";
    app->launches.push_back(b.build());
    app->assignCodeBases();
    return app;
}

} // namespace

// ---------------------------------------------------------------------
// Work conservation: total committed instructions are an invariant of
// the program, independent of frequency schedule or epoch length.
// ---------------------------------------------------------------------
class WorkConservation : public ::testing::TestWithParam<int>
{};

TEST_P(WorkConservation, CommitCountIndependentOfFrequency)
{
    const int mhz = GetParam();
    gpu::GpuConfig cfg;
    cfg.numCus = 2;
    cfg.waveSlotsPerCu = 8;
    cfg.defaultFreq = static_cast<Freq>(mhz) * freqMHz;
    gpu::GpuChip chip(cfg, mixedApp());
    bool done = false;
    for (int e = 1; e <= 4000 && !done; ++e)
        done = chip.runUntil(e * tickUs);
    ASSERT_TRUE(done);

    gpu::GpuConfig ref_cfg = cfg;
    ref_cfg.defaultFreq = 1'700 * freqMHz;
    gpu::GpuChip ref(ref_cfg, mixedApp());
    done = false;
    for (int e = 1; e <= 4000 && !done; ++e)
        done = ref.runUntil(e * tickUs);
    ASSERT_TRUE(done);
    EXPECT_EQ(chip.totalCommitted(), ref.totalCommitted());
}

INSTANTIATE_TEST_SUITE_P(Frequencies, WorkConservation,
                         ::testing::Values(1300, 1500, 1800, 2200));

// ---------------------------------------------------------------------
// Monotonicity: more frequency never slows a run down (no contention
// pathologies in an isolated 1-CU configuration).
// ---------------------------------------------------------------------
TEST(Monotonicity, SingleCuRuntimeNonIncreasingInFrequency)
{
    Tick prev = 0;
    for (int mhz = 1300; mhz <= 2200; mhz += 300) {
        gpu::GpuConfig cfg;
        cfg.numCus = 1;
        cfg.waveSlotsPerCu = 8;
        cfg.defaultFreq = static_cast<Freq>(mhz) * freqMHz;
        gpu::GpuChip chip(cfg, mixedApp(150));
        for (int e = 1; e <= 4000; ++e)
            if (chip.runUntil(e * tickUs))
                break;
        if (prev > 0) {
            EXPECT_LE(chip.lastCommitTick(), prev + tickUs / 10)
                << mhz << " MHz";
        }
        prev = chip.lastCommitTick();
    }
}

// ---------------------------------------------------------------------
// Estimation models: identity at the measured frequency and
// monotonicity in target frequency hold for every model and every
// async decomposition the simulator can produce.
// ---------------------------------------------------------------------
class EstimationProperties
    : public ::testing::TestWithParam<models::EstimationKind>
{};

TEST_P(EstimationProperties, IdentityAndMonotonicityOnRealRecords)
{
    gpu::GpuConfig cfg;
    cfg.numCus = 2;
    cfg.waveSlotsPerCu = 8;
    gpu::GpuChip chip(cfg, mixedApp());
    chip.runUntil(tickUs);
    const gpu::EpochRecord rec = chip.harvestEpoch(0);

    for (const auto &cu : rec.cus) {
        if (cu.committed == 0)
            continue;
        const double at_same = models::cuInstrAt(
            GetParam(), cu, tickUs, cu.freq);
        EXPECT_NEAR(at_same, static_cast<double>(cu.committed), 1e-6);
        double prev = 0.0;
        for (int mhz = 1300; mhz <= 2200; mhz += 100) {
            const double v = models::cuInstrAt(
                GetParam(), cu, tickUs,
                static_cast<Freq>(mhz) * freqMHz);
            EXPECT_GE(v, prev);
            prev = v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, EstimationProperties,
    ::testing::Values(models::EstimationKind::Stall,
                      models::EstimationKind::Lead,
                      models::EstimationKind::Crit,
                      models::EstimationKind::Crisp));

// ---------------------------------------------------------------------
// Oracle sweep: with shuffling, every (domain, state) cell is filled
// and agrees with a direct single-frequency execution.
// ---------------------------------------------------------------------
class SweepCoverage : public ::testing::TestWithParam<int>
{};

TEST_P(SweepCoverage, EveryStateMeasuredMatchesDirectRun)
{
    const std::size_t check_state =
        static_cast<std::size_t>(GetParam());
    gpu::GpuConfig cfg;
    cfg.numCus = 2;
    cfg.waveSlotsPerCu = 8;
    gpu::GpuChip chip(cfg, mixedApp());
    chip.runUntil(tickUs);
    chip.harvestEpoch(0);

    const dvfs::DomainMap domains(2, 1);
    const power::VfTable table = power::VfTable::paperTable();
    oracle::SweepOptions opts;
    opts.waveLevel = false;
    const auto est = oracle::forkPreExecuteSweep(chip, domains, table,
                                                 tickUs, opts);

    // Direct run: both domains at check_state.
    gpu::GpuChip direct = chip;
    for (std::uint32_t cu = 0; cu < 2; ++cu)
        direct.setCuFrequency(cu, table.state(check_state).freq, 0);
    direct.runUntil(chip.now() + tickUs);
    const auto rec = direct.harvestEpoch(chip.now());

    for (std::uint32_t d = 0; d < 2; ++d) {
        const double sampled = est.domainInstr[d][check_state];
        const double actual = static_cast<double>(rec.cus[d].committed);
        ASSERT_GT(sampled, 0.0);
        ASSERT_GT(actual, 0.0);
        // Shuffled neighbours differ from the direct run; agreement
        // should still be within ~15% (paper: 97.6% on their setup).
        EXPECT_NEAR(sampled / actual, 1.0, 0.15);
    }
}

INSTANTIATE_TEST_SUITE_P(States, SweepCoverage,
                         ::testing::Values(0, 3, 6, 9));

// ---------------------------------------------------------------------
// Epoch-length invariance of the driver: energy accounting over the
// same static run must not depend (much) on how it is sliced.
// ---------------------------------------------------------------------
class EpochSlicing : public ::testing::TestWithParam<int>
{};

TEST_P(EpochSlicing, StaticEnergyIndependentOfEpochLength)
{
    sim::RunConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.gpu.waveSlotsPerCu = 8;
    cfg.maxSimTime = 5 * tickMs;
    cfg.scaled();
    cfg.epochLen = GetParam() * tickUs;

    sim::ExperimentDriver driver(cfg);
    dvfs::StaticController c(driver.nominalState());
    const sim::RunResult r = driver.run(mixedApp(), c);
    ASSERT_TRUE(r.completed);

    sim::RunConfig ref_cfg = cfg;
    ref_cfg.epochLen = tickUs;
    sim::ExperimentDriver ref_driver(ref_cfg);
    dvfs::StaticController ref_c(ref_driver.nominalState());
    const sim::RunResult ref = ref_driver.run(mixedApp(), ref_c);

    EXPECT_EQ(r.instructions, ref.instructions);
    EXPECT_NEAR(r.energy / ref.energy, 1.0, 0.05);
    EXPECT_NEAR(static_cast<double>(r.execTime) /
                static_cast<double>(ref.execTime), 1.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Epochs, EpochSlicing,
                         ::testing::Values(2, 5, 10));

// ---------------------------------------------------------------------
// PCSTALL sharing: table sharing across CUs must not change the
// decision plumbing (runs complete; storage shrinks).
// ---------------------------------------------------------------------
class TableSharing : public ::testing::TestWithParam<int>
{};

TEST_P(TableSharing, SharedTablesRunAndShrinkStorage)
{
    const auto cus_per_table = static_cast<std::uint32_t>(GetParam());
    sim::RunConfig cfg;
    cfg.gpu.numCus = 4;
    cfg.gpu.waveSlotsPerCu = 8;
    cfg.maxSimTime = 5 * tickMs;
    cfg.scaled();

    core::PcstallConfig pcfg = core::PcstallConfig::forEpoch(tickUs, 8);
    pcfg.cusPerTable = cus_per_table;
    core::PcstallController c(pcfg, 4);

    sim::ExperimentDriver driver(cfg);
    const sim::RunResult r = driver.run(mixedApp(), c);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(c.storageBytes(),
              (4 / cus_per_table) *
                  predict::PcSensitivityTable(pcfg.table)
                      .storageBytes());
}

INSTANTIATE_TEST_SUITE_P(Sharing, TableSharing,
                         ::testing::Values(1, 2, 4));

// ---------------------------------------------------------------------
// Objective sweep: for every objective, every workload-independent
// invariant of chooseState holds on driver-produced inputs.
// ---------------------------------------------------------------------
class ObjectiveSweep
    : public ::testing::TestWithParam<dvfs::Objective>
{};

TEST_P(ObjectiveSweep, RunsCompleteUnderEveryObjective)
{
    sim::RunConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.gpu.waveSlotsPerCu = 8;
    cfg.maxSimTime = 5 * tickMs;
    cfg.objective = GetParam();
    cfg.scaled();
    sim::ExperimentDriver driver(cfg);
    core::PcstallController c(core::PcstallConfig::forEpoch(tickUs, 8),
                              2);
    const sim::RunResult r = driver.run(mixedApp(), c);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.energy, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Objectives, ObjectiveSweep,
    ::testing::Values(dvfs::Objective::Edp, dvfs::Objective::Ed2p,
                      dvfs::Objective::Ed3p,
                      dvfs::Objective::EnergyUnderPerfBound));

// ---------------------------------------------------------------------
// Snapshot determinism across workloads: a forked copy replays the
// original's future exactly when driven identically.
// ---------------------------------------------------------------------
class SnapshotDeterminism
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(SnapshotDeterminism, CopyReplaysOriginalFuture)
{
    workloads::WorkloadParams p;
    p.numCus = 2;
    p.scale = 0.15;
    auto app = std::make_shared<const isa::Application>(
        workloads::makeWorkload(GetParam(), p));
    gpu::GpuConfig cfg;
    cfg.numCus = 2;
    gpu::GpuChip chip(cfg, app);
    chip.runUntil(3 * tickUs);
    chip.harvestEpoch(0);

    gpu::GpuChip copy = chip;
    chip.runUntil(chip.now() + 4 * tickUs);
    copy.runUntil(copy.now() + 4 * tickUs);
    EXPECT_EQ(chip.totalCommitted(), copy.totalCommitted());
    EXPECT_EQ(chip.lastCommitTick(), copy.lastCommitTick());
}

INSTANTIATE_TEST_SUITE_P(Workloads, SnapshotDeterminism,
                         ::testing::Values("comd", "quickS", "dgemm",
                                           "BwdBN", "xsbench"));
