/** @file Unit tests for src/common. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/cli.hh"
#include "common/rng.hh"
#include "common/stats_util.hh"
#include "common/table_writer.hh"
#include "common/types.hh"

using namespace pcstall;

TEST(Types, ClockPeriodRoundTrips)
{
    EXPECT_EQ(clockPeriod(1'000 * freqMHz), 1000);
    EXPECT_EQ(clockPeriod(2'000 * freqMHz), 500);
    // 2.2 GHz: 454.5... ps rounds to 455.
    EXPECT_EQ(clockPeriod(2'200 * freqMHz), 455);
}

TEST(Types, CyclesIn)
{
    EXPECT_EQ(cyclesIn(tickUs, 1'000 * freqMHz), 1000);
    EXPECT_EQ(cyclesIn(tickUs, 2'000 * freqMHz), 2000);
}

TEST(Types, UnitHelpers)
{
    EXPECT_DOUBLE_EQ(freqGHzD(1'700 * freqMHz), 1.7);
    EXPECT_DOUBLE_EQ(tickSeconds(tickUs), 1e-6);
    EXPECT_DOUBLE_EQ(tickSeconds(tickMs), 1e-3);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, CopyPreservesStream)
{
    Rng a(7);
    a.next();
    Rng b = a;
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowInRange)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(5);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ForkIndependent)
{
    Rng a(11);
    Rng child = a.fork();
    EXPECT_NE(a.next(), child.next());
}

TEST(Rng, MixHashAvalanche)
{
    // Flipping one input bit should flip about half the output bits.
    int total = 0;
    for (int bit = 0; bit < 64; ++bit) {
        const std::uint64_t h1 = mixHash(0x1234567890ABCDEFULL);
        const std::uint64_t h2 =
            mixHash(0x1234567890ABCDEFULL ^ (1ULL << bit));
        total += __builtin_popcountll(h1 ^ h2);
    }
    EXPECT_NEAR(total / 64.0, 32.0, 6.0);
}

TEST(Stats, MeanAndGeomean)
{
    const std::vector<double> xs{1.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
    EXPECT_DOUBLE_EQ(geomean(xs), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, GeomeanRejectsNonPositive)
{
    const std::vector<double> xs{1.0, 0.0, 4.0};
    EXPECT_DOUBLE_EQ(geomean(xs), 0.0);
}

TEST(Stats, LinearFitExact)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> ys{3.0, 5.0, 7.0, 9.0};
    const LinearFit fit = linearFit(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitConstantSeries)
{
    const std::vector<double> xs{1.0, 2.0, 3.0};
    const std::vector<double> ys{5.0, 5.0, 5.0};
    const LinearFit fit = linearFit(xs, ys);
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
    EXPECT_DOUBLE_EQ(fit.r2, 1.0);
}

TEST(Stats, LinearFitDegenerate)
{
    const std::vector<double> xs{2.0, 2.0};
    const std::vector<double> ys{1.0, 3.0};
    const LinearFit fit = linearFit(xs, ys);
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(Stats, AvgRelativeChange)
{
    // Alternating 1,2,1,2: mean |delta| = 1, mean |value| = 1.5.
    const std::vector<double> xs{1.0, 2.0, 1.0, 2.0};
    EXPECT_NEAR(avgRelativeChange(xs), 1.0 / 1.5, 1e-12);
    EXPECT_DOUBLE_EQ(avgRelativeChange({{5.0}}), 0.0);
    const std::vector<double> flat{3.0, 3.0, 3.0};
    EXPECT_DOUBLE_EQ(avgRelativeChange(flat), 0.0);
}

TEST(Stats, RelativeDiff)
{
    EXPECT_DOUBLE_EQ(relativeDiff(1.0, 3.0), 1.0);
    EXPECT_DOUBLE_EQ(relativeDiff(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(relativeDiff(2.0, 2.0), 0.0);
}

TEST(TableWriter, AlignedOutput)
{
    TableWriter t({"a", "long_header"});
    t.beginRow().cell("x").cell(1.5, 1);
    t.endRow();
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("long_header"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 1u);
}

TEST(TableWriter, CsvOutput)
{
    TableWriter t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableWriter, Formatters)
{
    EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
    EXPECT_EQ(formatPercent(0.316, 1), "31.6%");
}

TEST(Cli, ParsesOptionsAndPositionals)
{
    const char *argv[] = {"prog", "--cus", "32", "--csv",
                          "--scale=0.5", "pos1"};
    CliOptions cli(6, const_cast<char **>(argv));
    EXPECT_EQ(cli.getInt("cus", 1), 32);
    EXPECT_TRUE(cli.has("csv"));
    EXPECT_DOUBLE_EQ(cli.getDouble("scale", 1.0), 0.5);
    EXPECT_EQ(cli.getInt("missing", 7), 7);
    ASSERT_EQ(cli.positional().size(), 1u);
    EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, MalformedValuesFallBackAndAreDiagnosed)
{
    const char *argv[] = {"prog", "--cus", "lots", "--scale=fast"};
    CliOptions cli(4, const_cast<char **>(argv));
    EXPECT_EQ(cli.getInt("cus", 8), 8);
    EXPECT_DOUBLE_EQ(cli.getDouble("scale", 1.0), 1.0);
    ASSERT_EQ(cli.errors().size(), 2u);
    EXPECT_NE(cli.errors()[0].find("--cus"), std::string::npos);
    EXPECT_NE(cli.errors()[1].find("--scale"), std::string::npos);
}

TEST(Stats, StdDevKnownValues)
{
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                 9.0};
    EXPECT_NEAR(stddev(xs), 2.138, 0.001);
    EXPECT_DOUBLE_EQ(stddev({{1.0}}), 0.0);
}

TEST(Stats, ClampTo)
{
    EXPECT_DOUBLE_EQ(clampTo(5.0, 0.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(clampTo(-5.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(clampTo(0.5, 0.0, 1.0), 0.5);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(2, 5);
        ASSERT_GE(v, 2);
        ASSERT_LE(v, 5);
        saw_lo |= v == 2;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}
