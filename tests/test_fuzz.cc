/**
 * @file
 * Randomized hardening tests: generate structurally valid random
 * kernels and check simulator-wide invariants (no panics, work
 * conservation across frequency schedules, snapshot determinism,
 * epoch-stat sanity), plus a differential test of the cache model
 * against a trivially correct reference implementation.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <memory>

#include "common/rng.hh"
#include "gpu/gpu_chip.hh"
#include "isa/kernel_builder.hh"
#include "memory/cache_model.hh"
#include "workloads/kernel_parser.hh"

using namespace pcstall;

namespace
{

/** Build a random, structurally valid application. */
std::shared_ptr<const isa::Application>
randomApp(std::uint64_t seed)
{
    Rng rng(seed);
    auto app = std::make_shared<isa::Application>();
    app->name = "fuzz_" + std::to_string(seed);

    const int kernels = 1 + static_cast<int>(rng.below(3));
    for (int k = 0; k < kernels; ++k) {
        isa::KernelBuilder b("fuzz_k" + std::to_string(k));
        std::vector<std::uint16_t> regions;
        const int nregions = 1 + static_cast<int>(rng.below(3));
        for (int r = 0; r < nregions; ++r) {
            regions.push_back(b.region(
                "r" + std::to_string(r),
                (1 + rng.below(64)) * 64 * 1024));
        }
        b.grid(1 + static_cast<std::uint32_t>(rng.below(12)),
               rng.chance(0.5) ? 4 : 8);
        b.seed(rng.next());

        const int blocks = 1 + static_cast<int>(rng.below(4));
        for (int blk = 0; blk < blocks; ++blk) {
            const std::uint32_t trips =
                1 + static_cast<std::uint32_t>(rng.below(30));
            const std::uint32_t variation = rng.chance(0.3)
                ? static_cast<std::uint32_t>(rng.below(trips)) : 0;
            b.loop(trips, variation);
            const int body = 1 + static_cast<int>(rng.below(5));
            bool pending_mem = false;
            for (int i = 0; i < body; ++i) {
                switch (rng.below(5)) {
                  case 0:
                    b.valu(static_cast<std::uint16_t>(
                               1 + rng.below(6)),
                           1 + static_cast<std::uint32_t>(
                               rng.below(8)));
                    break;
                  case 1:
                    b.lds(8, 1);
                    break;
                  case 2:
                    b.load(regions[rng.below(regions.size())],
                           rng.chance(0.5)
                               ? isa::AccessPattern::Random
                               : isa::AccessPattern::Streaming,
                           16 << rng.below(3));
                    pending_mem = true;
                    break;
                  case 3:
                    b.store(regions[rng.below(regions.size())],
                            isa::AccessPattern::Streaming,
                            16 << rng.below(3));
                    pending_mem = true;
                    break;
                  default:
                    b.salu(1);
                    break;
                }
            }
            if (pending_mem)
                b.waitcnt(static_cast<std::uint16_t>(rng.below(2)));
            b.endLoop();
            if (variation == 0 && rng.chance(0.3))
                b.barrier();
        }
        app->launches.push_back(b.build());
    }
    app->assignCodeBases();
    return app;
}

/** Run to completion; returns (committed, finish tick). */
std::pair<std::uint64_t, Tick>
runToCompletion(std::shared_ptr<const isa::Application> app, Freq freq)
{
    gpu::GpuConfig cfg;
    cfg.numCus = 2;
    cfg.waveSlotsPerCu = 8;
    cfg.defaultFreq = freq;
    gpu::GpuChip chip(cfg, app);
    for (int e = 1; e <= 20000; ++e) {
        if (chip.runUntil(e * tickUs))
            return {chip.totalCommitted(), chip.lastCommitTick()};
    }
    ADD_FAILURE() << "fuzz app did not complete";
    return {0, 0};
}

} // namespace

class KernelFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(KernelFuzz, WorkConservedAcrossFrequencies)
{
    const auto app = randomApp(static_cast<std::uint64_t>(GetParam()));
    const auto slow = runToCompletion(app, 1'300 * freqMHz);
    const auto fast = runToCompletion(app, 2'200 * freqMHz);
    EXPECT_EQ(slow.first, fast.first);
    EXPECT_GT(slow.first, 0u);
    // Faster clock never loses time.
    EXPECT_GE(slow.second + tickUs / 10, fast.second);
}

TEST_P(KernelFuzz, SnapshotReplaysExactly)
{
    const auto app = randomApp(
        static_cast<std::uint64_t>(GetParam()) ^ 0xF00D);
    gpu::GpuConfig cfg;
    cfg.numCus = 2;
    cfg.waveSlotsPerCu = 8;
    gpu::GpuChip chip(cfg, app);
    chip.runUntil(2 * tickUs);
    chip.harvestEpoch(0);

    gpu::GpuChip copy = chip;
    const bool done_a = chip.runUntil(chip.now() + 6 * tickUs);
    const bool done_b = copy.runUntil(copy.now() + 6 * tickUs);
    EXPECT_EQ(done_a, done_b);
    EXPECT_EQ(chip.totalCommitted(), copy.totalCommitted());
    EXPECT_EQ(chip.lastCommitTick(), copy.lastCommitTick());
}

TEST_P(KernelFuzz, EpochStatsStayWithinBounds)
{
    const auto app = randomApp(
        static_cast<std::uint64_t>(GetParam()) ^ 0xBEEF);
    gpu::GpuConfig cfg;
    cfg.numCus = 2;
    cfg.waveSlotsPerCu = 8;
    gpu::GpuChip chip(cfg, app);
    Tick t = 0;
    std::uint64_t harvested = 0;
    bool done = false;
    while (!done && t < 20 * tickMs) {
        done = chip.runUntil(t + tickUs);
        const gpu::EpochRecord rec = chip.harvestEpoch(t);
        t += tickUs;
        harvested += rec.totalCommitted();
        for (const auto &cu : rec.cus) {
            EXPECT_GE(cu.loadStall, 0);
            EXPECT_LE(cu.loadStall, tickUs);
            EXPECT_LE(cu.storeStall, tickUs);
            EXPECT_LE(cu.memInterval, tickUs);
            EXPECT_LE(cu.leadLoad, tickUs);
        }
        for (const auto &w : rec.waves) {
            EXPECT_LE(w.memStall, tickUs);
            EXPECT_LE(w.barrierStall, tickUs);
        }
    }
    ASSERT_TRUE(done);
    EXPECT_EQ(harvested, chip.totalCommitted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzz,
                         ::testing::Range(1, 13));

// ---------------------------------------------------------------------
// Cache differential test against a reference LRU.
// ---------------------------------------------------------------------
namespace
{

/** Trivially correct set-associative LRU reference. */
class ReferenceCache
{
  public:
    ReferenceCache(std::uint64_t size, std::uint32_t line,
                   std::uint32_t ways)
        : line(line), ways(ways), sets(size / line / ways),
          lru(sets)
    {}

    bool
    access(std::uint64_t addr)
    {
        const std::uint64_t tag = addr / line;
        auto &set = lru[tag % sets];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == tag) {
                set.erase(it);
                set.push_front(tag);
                return true;
            }
        }
        set.push_front(tag);
        if (set.size() > ways)
            set.pop_back();
        return false;
    }

  private:
    std::uint64_t line;
    std::uint32_t ways;
    std::uint64_t sets;
    std::vector<std::list<std::uint64_t>> lru;
};

} // namespace

class CacheDifferential : public ::testing::TestWithParam<int>
{};

TEST_P(CacheDifferential, MatchesReferenceLru)
{
    const std::uint64_t size = 4096;
    const std::uint32_t line = 64;
    const std::uint32_t ways = GetParam() == 0 ? 1
        : (GetParam() == 1 ? 2 : 4);
    memory::CacheModel dut(size, line, ways);
    ReferenceCache ref(size, line, ways);

    Rng rng(0xCACE + static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 20000; ++i) {
        // Skewed footprint: ~2x the cache so hits and misses mix.
        const std::uint64_t addr = rng.below(2 * size);
        ASSERT_EQ(dut.access(addr, true), ref.access(addr))
            << "access " << i << " addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheDifferential,
                         ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------
// Kernel-script parser robustness.
// ---------------------------------------------------------------------

namespace
{

const char *const kSeedScript = R"(
kernel main
  seed 7
  region state 64M
  region table 2M
  grid 24 4
  loop 40 8
    load state random
    load table stream
    waitcnt 0
    valu 6 4
    lds 2 8
  endloop
  salu 3
  barrier
  store state strided 128
  waitcnt 0
endkernel
kernel tail
  valu 4 16
endkernel
app fuzzed = main tail
)";

} // namespace

TEST(ParserFuzz, TruncationsNeverCrashAndDiagnoseWithLineNumbers)
{
    // Every prefix of a valid script either parses or yields a
    // "line N:" diagnostic; the parser must never crash or exit.
    const std::string script(kSeedScript);
    ASSERT_TRUE(workloads::parseApplication(script).ok())
        << workloads::parseApplication(script).error;
    for (std::size_t cut = 0; cut <= script.size(); cut += 7) {
        const auto result =
            workloads::parseApplication(script.substr(0, cut));
        if (!result.ok()) {
            EXPECT_NE(result.error.find("line "), std::string::npos)
                << "cut=" << cut << ": " << result.error;
        }
    }
}

TEST(ParserFuzz, RandomMutationsNeverCrash)
{
    const std::string script(kSeedScript);
    Rng rng(0xBADF00D);
    static const char kNoise[] =
        "0123456789 \tkernelloopgrid-+.KMGxyz\n";
    for (int trial = 0; trial < 400; ++trial) {
        std::string mutated = script;
        const int edits = 1 + static_cast<int>(rng.below(8));
        for (int e = 0; e < edits; ++e) {
            const std::size_t pos = static_cast<std::size_t>(
                rng.below(mutated.size()));
            switch (rng.below(3)) {
            case 0: // overwrite
                mutated[pos] =
                    kNoise[rng.below(sizeof(kNoise) - 1)];
                break;
            case 1: // delete
                mutated.erase(pos, 1 + rng.below(5));
                break;
            default: // duplicate a chunk (unbalances blocks)
                mutated.insert(pos,
                               mutated.substr(pos,
                                              1 + rng.below(12)));
                break;
            }
            if (mutated.empty())
                mutated = " ";
        }
        const auto result = workloads::parseApplication(mutated);
        if (!result.ok()) {
            EXPECT_NE(result.error.find("line "), std::string::npos)
                << result.error;
        } else {
            // Whatever parsed must be a well-formed application.
            EXPECT_FALSE(result.app->launches.empty());
        }
    }
}
