/** @file Unit tests for src/isa: kernels, builder DSL, validation. */

#include <gtest/gtest.h>

#include "expect_fatal.hh"

#include "isa/kernel.hh"
#include "isa/kernel_builder.hh"

using namespace pcstall;
using namespace pcstall::isa;

namespace
{

Kernel
simpleKernel()
{
    KernelBuilder b("k");
    const auto r = b.region("data", 1 << 20);
    b.loop(10);
    b.load(r, AccessPattern::Streaming);
    b.waitcnt(0);
    b.valu(4, 3);
    b.endLoop();
    return b.build();
}

} // namespace

TEST(KernelBuilder, EmitsValidatedKernel)
{
    const Kernel k = simpleKernel();
    EXPECT_EQ(k.code.back().op, OpType::EndPgm);
    // loop body: load, waitcnt, 3x valu, branch, endpgm = 7.
    EXPECT_EQ(k.code.size(), 7u);
    EXPECT_EQ(k.loops.size(), 1u);
    EXPECT_EQ(k.loops[0].baseTrips, 10u);
}

TEST(KernelBuilder, BranchTargetsLoopHead)
{
    const Kernel k = simpleKernel();
    const Instruction &branch = k.code[k.code.size() - 2];
    ASSERT_EQ(branch.op, OpType::Branch);
    EXPECT_EQ(branch.target, 0);
    EXPECT_EQ(branch.loopId, 0);
}

TEST(KernelBuilder, NestedLoops)
{
    KernelBuilder b("nested");
    const auto r = b.region("data", 1 << 16);
    b.loop(5);
    b.valu(4, 2);
    b.loop(3);
    b.load(r, AccessPattern::Random);
    b.waitcnt(0);
    b.endLoop();
    b.endLoop();
    const Kernel k = b.build();
    EXPECT_EQ(k.loops.size(), 2u);
    // Inner branch targets the inner head.
    int branches = 0;
    for (const auto &ins : k.code)
        if (ins.op == OpType::Branch)
            ++branches;
    EXPECT_EQ(branches, 2);
}

TEST(KernelBuilder, RegionsDoNotOverlap)
{
    KernelBuilder b("regions");
    const auto r1 = b.region("a", 3 << 20);
    const auto r2 = b.region("b", 1 << 20);
    b.valu(1, 1);
    const Kernel k = b.build();
    const MemRegion &a = k.regions[r1];
    const MemRegion &bb = k.regions[r2];
    EXPECT_GE(bb.base, a.base + a.sizeBytes);
}

TEST(KernelBuilder, GridAndSeed)
{
    KernelBuilder b("g");
    b.valu(1, 1);
    b.grid(128, 8).seed(99);
    const Kernel k = b.build();
    EXPECT_EQ(k.numWorkgroups, 128u);
    EXPECT_EQ(k.wavesPerWorkgroup, 8u);
    EXPECT_EQ(k.seed, 99u);
    EXPECT_EQ(k.totalWaves(), 1024u);
}

TEST(KernelBuilder, WaitcntMaxOutstanding)
{
    KernelBuilder b("w");
    const auto r = b.region("d", 1 << 16);
    b.load(r, AccessPattern::Streaming);
    b.load(r, AccessPattern::Streaming);
    b.waitcnt(1);
    const Kernel k = b.build();
    EXPECT_EQ(k.code[2].op, OpType::Waitcnt);
    EXPECT_EQ(k.code[2].maxOutstanding, 1);
}

TEST(Kernel, PcAddressIncludesCodeBase)
{
    Kernel k = simpleKernel();
    k.codeBase = 0x1000;
    EXPECT_EQ(k.pcAddr(0), 0x1000u);
    EXPECT_EQ(k.pcAddr(3), 0x1000u + 3 * instrSizeBytes);
}

TEST(Application, UniqueKernelCount)
{
    Application app;
    app.name = "a";
    app.launches.push_back(simpleKernel());
    app.launches.push_back(simpleKernel());
    KernelBuilder b("other");
    b.valu(1, 1);
    app.launches.push_back(b.build());
    EXPECT_EQ(app.uniqueKernelCount(), 2u);
}

TEST(Application, AssignCodeBasesSharesSameName)
{
    Application app;
    app.launches.push_back(simpleKernel());
    app.launches.push_back(simpleKernel());
    KernelBuilder b("other");
    b.valu(1, 1);
    app.launches.push_back(b.build());
    app.assignCodeBases();
    EXPECT_EQ(app.launches[0].codeBase, app.launches[1].codeBase);
    EXPECT_NE(app.launches[0].codeBase, app.launches[2].codeBase);
}

TEST(Kernel, ValidateAcceptsWellFormed)
{
    const Kernel k = simpleKernel();
    EXPECT_NO_FATAL_FAILURE(k.validate());
}

using KernelDeath = ::testing::Test;

TEST(KernelDeath, BuildWithOpenLoopDies)
{
    KernelBuilder b("bad");
    b.loop(3);
    b.valu(1, 1);
    EXPECT_FATAL(b.build(), "unclosed");
}

TEST(KernelDeath, EndLoopWithoutLoopDies)
{
    KernelBuilder b("bad");
    b.valu(1, 1);
    EXPECT_FATAL(b.endLoop(), "endLoop");
}

TEST(KernelDeath, EmptyLoopDies)
{
    KernelBuilder b("bad");
    b.loop(3);
    EXPECT_FATAL(b.endLoop(), "empty loop");
}

TEST(KernelDeath, ValidateRejectsMissingEndpgm)
{
    Kernel k;
    k.name = "broken";
    Instruction i;
    i.op = OpType::VAlu;
    k.code.push_back(i);
    EXPECT_FATAL(k.validate(), "s_endpgm");
}

TEST(KernelDeath, ValidateRejectsBadRegion)
{
    Kernel k;
    k.name = "broken";
    Instruction load;
    load.op = OpType::VMemLoad;
    load.mem.regionId = 3;
    k.code.push_back(load);
    Instruction end;
    end.op = OpType::EndPgm;
    k.code.push_back(end);
    EXPECT_FATAL(k.validate(), "unknown region");
}

TEST(OpTypes, Names)
{
    EXPECT_STREQ(opTypeName(OpType::VAlu), "v_alu");
    EXPECT_STREQ(opTypeName(OpType::Waitcnt), "s_waitcnt");
    EXPECT_STREQ(accessPatternName(AccessPattern::Random), "random");
    EXPECT_TRUE(isVMem(OpType::VMemLoad));
    EXPECT_TRUE(isVMem(OpType::VMemStore));
    EXPECT_FALSE(isVMem(OpType::VAlu));
}

TEST(KernelDeath, BarrierInsideDivergentLoopDies)
{
    KernelBuilder b("bad");
    b.loop(10, 5); // divergent trips
    b.valu(4, 1);
    EXPECT_FATAL(b.barrier(), "divergent loop");
}

TEST(KernelBuilder, BarrierInsideUniformLoopIsFine)
{
    KernelBuilder b("ok");
    b.loop(10);
    b.valu(4, 1);
    b.barrier();
    b.endLoop();
    EXPECT_NO_FATAL_FAILURE(b.build());
}

TEST(Kernel, TotalWavesAndValidationInteract)
{
    KernelBuilder b("geom");
    b.valu(1, 1);
    b.grid(7, 3);
    const Kernel k = b.build();
    EXPECT_EQ(k.totalWaves(), 21u);
}
