/**
 * @file
 * Tests of the decision-provenance subsystem (src/obs/provenance,
 * docs/provenance.md): the golden PCPV wire image of a small
 * synthetic run, byte-identity of sweep sidecars across --threads
 * values, live-capture vs trace-replay record identity (including
 * the hierarchical power cap), strict rejection of every truncation
 * and byte flip, the oracle-regret sign invariant, and preservation
 * of the regret rollup across a store-backed resume.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/pcstall_controller.hh"
#include "dvfs/hierarchical.hh"
#include "models/reactive_controller.hh"
#include "obs/provenance.hh"
#include "sim/experiment.hh"
#include "sweep_runner.hh"
#include "trace/format.hh"
#include "trace/replay.hh"
#include "workloads/workloads.hh"
#include "zoo/registry.hh"

using namespace pcstall;

namespace
{

sim::RunConfig
testConfig(std::uint32_t cus = 2)
{
    sim::RunConfig cfg;
    cfg.gpu.numCus = cus;
    cfg.maxSimTime = 2 * tickMs;
    cfg.scaled();
    return cfg;
}

std::shared_ptr<const isa::Application>
app(const std::string &name, std::uint32_t cus = 2, double scale = 0.2)
{
    workloads::WorkloadParams p;
    p.numCus = cus;
    p.scale = scale;
    return std::make_shared<const isa::Application>(
        workloads::makeWorkload(name, p));
}

/** Fresh unique path under gtest's per-run temp directory. */
std::string
tempPath(const std::string &stem, const std::string &ext)
{
    static int counter = 0;
    return ::testing::TempDir() + "pcstall_" + stem + "_" +
           std::to_string(static_cast<long>(::getpid())) + "_" +
           std::to_string(counter++) + ext;
}

/** Fresh unique directory under gtest's per-run temp directory. */
std::string
tempDir(const std::string &stem)
{
    const std::string dir = tempPath(stem, "");
    EXPECT_EQ(::mkdir(dir.c_str(), 0755), 0) << dir;
    return dir;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/**
 * Run PCSTALL (from the registry) on a few epochs of @p workload with
 * a provenance sink attached, returning the populated log. Capping
 * maxSimTime at @p epochs leaves the final decision unrealized, so
 * the dangling-record path is part of every consumer test.
 */
obs::ProvenanceLog
smallAuditedRun(const std::string &workload, std::uint64_t epochs = 3)
{
    auto cfg = testConfig();
    cfg.maxSimTime = static_cast<Tick>(epochs) * cfg.epochLen;
    const auto made =
        dvfs::ControllerRegistry::instance().make("PCSTALL", cfg);
    EXPECT_TRUE(made.ok()) << made.error;
    obs::ProvenanceLog log;
    sim::ExperimentDriver driver(cfg);
    driver.setProvenance(&log);
    driver.run(app(workload), *made.controller);
    return log;
}

} // namespace

// ---------------------------------------------------------------------
// Golden wire image: the serialized PCPV bytes of a pinned synthetic
// run must never drift silently. Regenerate (and call out the format
// change in docs/provenance.md) with PCSTALL_REGEN_GOLDEN=1.
// ---------------------------------------------------------------------

TEST(Provenance, GoldenPcpvImageIsStable)
{
    const obs::ProvenanceLog log = smallAuditedRun("comd");
    ASSERT_FALSE(log.records.empty());
    const std::string bytes = obs::encodeProvenance(log);

    const std::string path = std::string(PCSTALL_TEST_DATA_DIR) +
        "/provenance_golden.pcpv";
    if (std::getenv("PCSTALL_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << bytes;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << path << " missing; regenerate with PCSTALL_REGEN_GOLDEN=1";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(bytes, want.str())
        << "PCPV encoding drifted; if intentional, bump "
           "provenanceFormatVersion, regenerate with "
           "PCSTALL_REGEN_GOLDEN=1 and update docs/provenance.md";

    // The golden image round-trips through the strict decoder.
    const obs::ProvenanceReadResult back =
        obs::decodeProvenance(bytes);
    ASSERT_TRUE(back.ok()) << back.error;
    EXPECT_EQ(back.log->records.size(), log.records.size());
    EXPECT_EQ(back.log->meta.workload, "comd");
    EXPECT_EQ(back.log->meta.controller, "PCSTALL");
    EXPECT_EQ(obs::encodeProvenance(*back.log), bytes);
}

// ---------------------------------------------------------------------
// Thread-count independence: a sweep writing --provenance-out style
// sidecars produces byte-identical files at --threads 1 and 4.
// ---------------------------------------------------------------------

TEST(Provenance, SidecarsAreByteIdenticalAcrossThreadCounts)
{
    const std::vector<std::string> workloads = {"comd", "hacc",
                                                "xsbench"};
    const std::vector<std::string> designs = {"STALL", "PCSTALL"};

    // Distinct directories per thread count: output paths are claimed
    // process-wide, so reusing one pattern would add -rN suffixes to
    // the second sweep's files.
    auto sweep = [&](unsigned threads, const std::string &dir) {
        bench::BenchOptions opts;
        opts.cus = 4;
        opts.scale = 0.25;
        opts.threads = threads;
        bench::SweepRunner runner(opts);
        std::vector<bench::SweepCell> cells;
        for (const std::string &w : workloads) {
            for (const std::string &d : designs) {
                bench::SweepCell c = runner.cell(w, d);
                c.opts.provenanceOut = dir + "/{w}-{c}.pcpv";
                cells.push_back(c);
            }
        }
        const auto outcomes = runner.run(cells);
        for (const auto &o : outcomes)
            EXPECT_TRUE(o.run.ok) << o.run.error;
    };

    const std::string dir1 = tempDir("prov_t1");
    const std::string dir4 = tempDir("prov_t4");
    sweep(1, dir1);
    sweep(4, dir4);

    for (const std::string &w : workloads) {
        for (const std::string &d : designs) {
            const std::string name = "/" + w + "-" + d + ".pcpv";
            SCOPED_TRACE(name);
            const std::string a = readFileBytes(dir1 + name);
            const std::string b = readFileBytes(dir4 + name);
            EXPECT_FALSE(a.empty());
            EXPECT_TRUE(a == b)
                << "sidecar differs between --threads 1 and 4";
            std::remove((dir1 + name).c_str());
            std::remove((dir4 + name).c_str());
        }
    }
    ::rmdir(dir1.c_str());
    ::rmdir(dir4.c_str());
}

// ---------------------------------------------------------------------
// Capture-then-replay: a trace replay re-derives the live run's
// provenance byte-for-byte, including under the hierarchical cap
// (which is not registry-constructible and exercises the wrapper
// path dvfs_explain rebuilds from trace meta).
// ---------------------------------------------------------------------

class ProvenanceReplay : public ::testing::TestWithParam<const char *>
{};

TEST_P(ProvenanceReplay, ReplayRederivesLiveProvenanceExactly)
{
    const std::string kind = GetParam();
    const auto cfg = testConfig();

    struct Built
    {
        std::unique_ptr<core::PcstallController> inner;
        std::unique_ptr<dvfs::DvfsController> controller;
        trace::HierarchicalMeta hier;
        dvfs::DvfsController &use()
        {
            return controller ? *controller : *inner;
        }
    };
    auto build = [&] {
        Built b;
        if (kind == "STALL") {
            b.controller =
                std::make_unique<models::ReactiveController>(
                    models::EstimationKind::Stall);
            return b;
        }
        b.inner = std::make_unique<core::PcstallController>(
            core::PcstallConfig::forEpoch(cfg.epochLen,
                                          cfg.gpu.waveSlotsPerCu),
            cfg.gpu.numCus);
        if (kind == "PCSTALL")
            return b;
        dvfs::HierarchicalConfig hcfg;
        hcfg.powerCap = 40.0;
        hcfg.reviewEpochs = 10;
        b.hier.enabled = true;
        b.hier.powerCap = hcfg.powerCap;
        b.hier.reviewEpochs = hcfg.reviewEpochs;
        b.hier.widenBelow = hcfg.widenBelow;
        b.controller =
            std::make_unique<dvfs::HierarchicalPowerManager>(
                *b.inner, hcfg);
        return b;
    };

    // Live run: capture the trace and the provenance together.
    Built live = build();
    obs::ProvenanceLog live_log;
    const std::string trace_path = tempPath("prov_replay", ".pctrace");
    sim::ExperimentDriver driver(cfg);
    driver.setProvenance(&live_log);
    trace::TraceWriter writer(
        trace_path, trace::makeTraceMeta(cfg, driver.table(), "comd",
                                         live.use(), live.hier));
    ASSERT_TRUE(writer.ok());
    trace::TraceCapture capture(writer);
    const sim::RunResult result =
        driver.run(app("comd"), live.use(), &capture);
    ASSERT_TRUE(capture.finished());
    ASSERT_FALSE(live_log.records.empty());

    // Replay twin: same controller built cold, provenance re-derived.
    const auto read = trace::readTraceFile(trace_path);
    ASSERT_TRUE(read.ok()) << read.error;
    Built twin = build();
    obs::ProvenanceLog replay_log;
    trace::ReplayDriver replay(*read.trace);
    trace::ReplayOptions ropts;
    ropts.auditRegret = true;
    ropts.provenance = &replay_log;
    const trace::ReplayOutcome outcome = replay.run(twin.use(), ropts);
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    EXPECT_TRUE(outcome.deterministic()) << outcome.firstMismatch;

    EXPECT_EQ(obs::encodeProvenance(replay_log),
              obs::encodeProvenance(live_log));
    EXPECT_EQ(replay_log.regret.count, result.regret.count);
    std::remove(trace_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Grid, ProvenanceReplay,
                         ::testing::Values("STALL", "PCSTALL",
                                           "PCSTALL+CAP"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n)
                                 if (c == '+')
                                     c = 'x';
                             return n;
                         });

// ---------------------------------------------------------------------
// Strict decoding: every truncation and every single-byte flip of a
// valid PCPV image is rejected (the trailer checksum covers the whole
// file), and the diagnostic is never empty.
// ---------------------------------------------------------------------

TEST(Provenance, EveryTruncationIsRejected)
{
    const std::string bytes =
        obs::encodeProvenance(smallAuditedRun("hacc"));
    ASSERT_GT(bytes.size(), 32u);
    for (std::size_t n = 0; n < bytes.size(); ++n) {
        const obs::ProvenanceReadResult r =
            obs::decodeProvenance(bytes.substr(0, n));
        EXPECT_FALSE(r.ok()) << "truncation to " << n << " bytes "
                             << "decoded successfully";
        EXPECT_FALSE(r.error.empty());
    }
}

TEST(Provenance, EveryByteFlipIsRejected)
{
    const std::string bytes =
        obs::encodeProvenance(smallAuditedRun("hacc"));
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::string corrupt = bytes;
        corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
        const obs::ProvenanceReadResult r =
            obs::decodeProvenance(corrupt);
        EXPECT_FALSE(r.ok())
            << "flip at byte " << i << " decoded successfully";
    }
}

// ---------------------------------------------------------------------
// Regret semantics: hindsight regret vs the oracle is non-negative
// for every realized record, and the rollup counts exactly the
// realized records.
// ---------------------------------------------------------------------

TEST(Provenance, OracleRegretIsNonNegativeAndRollupMatches)
{
    const obs::ProvenanceLog log = smallAuditedRun("xsbench", 6);
    ASSERT_FALSE(log.records.empty());
    std::uint64_t realized = 0;
    for (const obs::DecisionRecord &rec : log.records) {
        if (!rec.realized) {
            // Only a run-final dangling decision can be unrealized
            // (its epoch never completed).
            EXPECT_EQ(&rec, &log.records.back());
            EXPECT_TRUE(rec.stateScores.empty());
            continue;
        }
        ++realized;
        ASSERT_EQ(rec.stateScores.size(), log.meta.numStates);
        EXPECT_GE(rec.oracleRegret(), 0.0);
        EXPECT_GE(rec.oracleRegretRel(), 0.0);
        EXPECT_GE(rec.chosenScoreSum(), rec.bestScoreSum());
        for (const obs::DomainDecisionProv &dom : rec.domains) {
            EXPECT_LT(dom.chosenState, log.meta.numStates);
            EXPECT_LT(dom.appliedState, log.meta.numStates);
            EXPECT_LT(dom.bestState, log.meta.numStates);
        }
    }
    EXPECT_GT(realized, 0u);
    EXPECT_EQ(log.regret.count, realized);

    // The wall-capped golden run pins the dangling-record case: its
    // final decision's epoch never completes.
    const obs::ProvenanceLog capped = smallAuditedRun("comd");
    ASSERT_FALSE(capped.records.empty());
    EXPECT_FALSE(capped.records.back().realized);
}

// ---------------------------------------------------------------------
// Store resume: a regret rollup checkpointed with a cell result is
// reproduced field-for-field when a second sweep resumes from the
// store instead of recomputing.
// ---------------------------------------------------------------------

TEST(Provenance, RegretSummarySurvivesStoreResume)
{
    const std::string store = tempDir("prov_store");
    auto sweep = [&] {
        bench::BenchOptions opts;
        opts.cus = 4;
        opts.scale = 0.25;
        opts.threads = 2;
        opts.storeDir = store;
        bench::SweepRunner runner(opts);
        std::vector<bench::SweepCell> cells;
        for (const char *w : {"comd", "dgemm"}) {
            bench::SweepCell c = runner.cell(w, "PCSTALL");
            c.opts.auditRegret = true;
            cells.push_back(c);
        }
        return runner.run(cells);
    };

    const auto first = sweep();
    const auto resumed = sweep();
    ASSERT_EQ(first.size(), resumed.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        ASSERT_TRUE(first[i].run.ok) << first[i].run.error;
        ASSERT_TRUE(resumed[i].run.ok) << resumed[i].run.error;
        const obs::RegretSummary &a = first[i].run.result.regret;
        const obs::RegretSummary &b = resumed[i].run.result.regret;
        EXPECT_GT(a.count, 0u);
        EXPECT_EQ(a.count, b.count);
        EXPECT_EQ(a.oracleSum, b.oracleSum);
        EXPECT_EQ(a.oracleMax, b.oracleMax);
        EXPECT_EQ(a.staticSum, b.staticSum);
        EXPECT_EQ(a.buckets, b.buckets);
    }
}
