/**
 * @file
 * Tests of the crash-resumable sweep layer (docs/sweep_farm.md): the
 * atomic-file helpers, the content-addressed results store, the cell
 * payload codec, and the SweepRunner robustness behaviors - kill-and-
 * resume equivalence, shard-union-equals-full-enumeration, corruption
 * quarantine, the cell watchdog, and the transient-retry policy.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "store/atomic_file.hh"
#include "store/cell_codec.hh"
#include "store/result_store.hh"
#include "sweep_runner.hh"

using namespace pcstall;

namespace
{

namespace fs = std::filesystem;

/** Fresh per-test scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) /
        ("pcstall_store_" + name + "_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------- //
// atomic_file                                                       //
// ---------------------------------------------------------------- //

TEST(AtomicFile, WriteFileAtomicPublishesExactBytesAndNoTemp)
{
    const std::string dir = scratchDir("atomic");
    const std::string path = dir + "/artifact.bin";
    const std::string bytes("hello\0world\n\xff", 13);
    EXPECT_EQ(store::writeFileAtomic(path, bytes), "");
    EXPECT_EQ(readFile(path), bytes);
    // The staging temp must be gone and unregistered.
    EXPECT_FALSE(fs::exists(store::tempPathFor(path)));
    EXPECT_EQ(store::registeredTempFileCount(), 0u);

    // Overwrite is atomic too: the new content fully replaces the old.
    EXPECT_EQ(store::writeFileAtomic(path, "v2"), "");
    EXPECT_EQ(readFile(path), "v2");
}

TEST(AtomicFile, WriteToUnwritableDirectoryFailsWithoutArtifact)
{
    const std::string path =
        "/nonexistent-root-dir/sub/never/artifact.json";
    const std::string err = store::writeFileAtomic(path, "data");
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(fs::exists(path));
    EXPECT_EQ(store::registeredTempFileCount(), 0u);
}

TEST(AtomicFile, CommitTempFileRenamesStreamedBytes)
{
    const std::string dir = scratchDir("commit");
    const std::string path = dir + "/streamed.trace";
    const std::string temp = store::tempPathFor(path);
    {
        std::ofstream os(temp, std::ios::binary);
        store::registerTempFile(temp);
        os << "streamed-payload";
    }
    EXPECT_EQ(store::registeredTempFileCount(), 1u);
    EXPECT_EQ(store::commitTempFile(temp, path), "");
    EXPECT_EQ(readFile(path), "streamed-payload");
    EXPECT_FALSE(fs::exists(temp));
    EXPECT_EQ(store::registeredTempFileCount(), 0u);
}

TEST(AtomicFile, CleanupRemovesRegisteredTemps)
{
    const std::string dir = scratchDir("cleanup");
    const std::string temp = dir + "/orphan.tmp.123";
    {
        std::ofstream os(temp);
        os << "half-written";
    }
    store::registerTempFile(temp);
    EXPECT_GE(store::registeredTempFileCount(), 1u);
    EXPECT_GE(store::cleanupTempFiles(), 1u);
    EXPECT_FALSE(fs::exists(temp));
    EXPECT_EQ(store::registeredTempFileCount(), 0u);
}

// ---------------------------------------------------------------- //
// result_store                                                      //
// ---------------------------------------------------------------- //

store::CellKey
sampleKey(std::uint64_t run_index = 0)
{
    store::CellKey key;
    key.harness = "test_harness";
    key.workload = "comd";
    key.design = "PCSTALL";
    key.fingerprint = "4|0.25|1000|1|42";
    key.runIndex = run_index;
    return key;
}

TEST(ResultStore, KeyDigestIsStableAndCollisionResistant)
{
    const std::string a = store::keyDigest(sampleKey(0));
    EXPECT_EQ(a.size(), 32u);
    EXPECT_EQ(a, store::keyDigest(sampleKey(0)));
    EXPECT_NE(a, store::keyDigest(sampleKey(1)));
    store::CellKey other = sampleKey(0);
    other.design = "STALL";
    EXPECT_NE(a, store::keyDigest(other));
}

TEST(ResultStore, PutGetRoundTrip)
{
    store::ResultStore rs(scratchDir("roundtrip"));
    ASSERT_TRUE(rs.ok()) << rs.error();
    EXPECT_EQ(rs.entryCount(), 0u);

    const std::string payload("\x01payload\x00with-nul", 18);
    EXPECT_EQ(rs.put(sampleKey(), payload), "");
    EXPECT_EQ(rs.entryCount(), 1u);

    const auto got = rs.get(sampleKey());
    ASSERT_EQ(got.status, store::ResultStore::GetStatus::Hit);
    EXPECT_EQ(got.payload, payload);

    EXPECT_EQ(rs.get(sampleKey(7)).status,
              store::ResultStore::GetStatus::Miss);
}

TEST(ResultStore, TruncatedEntryIsQuarantinedAndRecomputable)
{
    store::ResultStore rs(scratchDir("trunc"));
    ASSERT_TRUE(rs.ok()) << rs.error();
    ASSERT_EQ(rs.put(sampleKey(), "full payload bytes"), "");

    fs::resize_file(rs.entryPath(sampleKey()), 6);
    const auto got = rs.get(sampleKey());
    EXPECT_EQ(got.status, store::ResultStore::GetStatus::Corrupt);
    EXPECT_FALSE(got.error.empty());
    // Quarantined: entry gone from the store, preserved in .corrupt/.
    EXPECT_FALSE(fs::exists(rs.entryPath(sampleKey())));
    EXPECT_EQ(rs.quarantinedCount(), 1u);
    // The caller recomputes: next lookup is a clean Miss, and a fresh
    // put restores the entry.
    EXPECT_EQ(rs.get(sampleKey()).status,
              store::ResultStore::GetStatus::Miss);
    EXPECT_EQ(rs.put(sampleKey(), "full payload bytes"), "");
    EXPECT_EQ(rs.get(sampleKey()).status,
              store::ResultStore::GetStatus::Hit);
}

TEST(ResultStore, FlippedPayloadByteFailsChecksum)
{
    store::ResultStore rs(scratchDir("corrupt"));
    ASSERT_TRUE(rs.ok()) << rs.error();
    ASSERT_EQ(rs.put(sampleKey(), "checksummed payload"), "");

    const std::string path = rs.entryPath(sampleKey());
    std::string bytes = readFile(path);
    bytes[bytes.size() / 2] ^= 0x40;
    std::ofstream(path, std::ios::binary).write(bytes.data(),
        static_cast<std::streamsize>(bytes.size()));

    EXPECT_EQ(rs.get(sampleKey()).status,
              store::ResultStore::GetStatus::Corrupt);
    EXPECT_EQ(rs.quarantinedCount(), 1u);
}

TEST(ResultStore, DigestCollisionReadsAsMissNotWrongPayload)
{
    store::ResultStore rs(scratchDir("collide"));
    ASSERT_TRUE(rs.ok()) << rs.error();
    ASSERT_EQ(rs.put(sampleKey(), "payload of the real key"), "");
    // Simulate a digest collision: copy the valid entry to the path
    // another key would hash to. The stored key text must reject it.
    store::CellKey other = sampleKey();
    other.workload = "hacc";
    fs::copy_file(rs.entryPath(sampleKey()), rs.entryPath(other));
    EXPECT_EQ(rs.get(other).status,
              store::ResultStore::GetStatus::Miss);
}

TEST(ResultStore, UnusableRootIsRecoverable)
{
    // A regular file where a directory component must go defeats
    // create_directories even when running as root.
    const std::string dir = scratchDir("badroot");
    { std::ofstream(dir + "/blocker") << "not a directory"; }
    store::ResultStore rs(dir + "/blocker/store");
    EXPECT_FALSE(rs.ok());
    EXPECT_FALSE(rs.error().empty());
    EXPECT_EQ(rs.get(sampleKey()).status,
              store::ResultStore::GetStatus::Miss);
    EXPECT_FALSE(rs.put(sampleKey(), "x").empty());
}

// ---------------------------------------------------------------- //
// cell_codec                                                        //
// ---------------------------------------------------------------- //

store::StoredCell
sampleCell()
{
    store::StoredCell cell;
    sim::RunResult &r = cell.run.result;
    r.controller = "PCSTALL";
    r.workload = "comd";
    r.completed = true;
    r.epochs = 321;
    r.execTime = 123456789;
    r.energy = 0.1 + 0.2; // deliberately non-representable exactly
    r.instructions = 987654321123ULL;
    r.predictionAccuracy = 0.87654321;
    r.transitions = 4242;
    r.transitionEnergy = 1e-7;
    r.freqTimeShare = {0.25, 0.5, 0.125, 0.125};
    r.finalTemperature = 341.15;
    r.faults.telemetryPerturbations = 3;
    r.faults.transitionExtraLatency = 777;
    r.faults.fallbackEpochs = 2;
    sim::EpochTraceEntry e;
    e.start = 1000;
    e.domainState = {0, 3, 2, 1};
    e.domainCommitted = {12.5, 0.0, 99.75, 3.25};
    e.faults.tableBitFlips = 1;
    e.faults.fallbackActive = true;
    r.trace.push_back(e);
    e.start = 2000;
    e.faults.fallbackActive = false;
    r.trace.push_back(e);
    cell.run.ok = true;

    obs::Registry reg;
    reg.counter("run.epochs").add(321);
    reg.gauge("run.final_temp_k").set(341.15);
    reg.histogram("run.exec_us").record(14.25);
    reg.histogram("run.exec_us").record(26.6);
    cell.metrics = reg.snapshot();
    return cell;
}

TEST(CellCodec, RoundTripIsExact)
{
    const store::StoredCell cell = sampleCell();
    const std::string payload = store::encodeStoredCell(cell);

    store::StoredCell out;
    std::string err;
    ASSERT_TRUE(store::decodeStoredCell(payload, out, err)) << err;
    EXPECT_TRUE(out.run.ok);
    const sim::RunResult &a = cell.run.result;
    const sim::RunResult &b = out.run.result;
    EXPECT_EQ(a.controller, b.controller);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.execTime, b.execTime);
    // Doubles travel as raw bits: bit-exact, not approximately equal.
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.predictionAccuracy, b.predictionAccuracy);
    EXPECT_EQ(a.transitions, b.transitions);
    EXPECT_EQ(a.transitionEnergy, b.transitionEnergy);
    EXPECT_EQ(a.freqTimeShare, b.freqTimeShare);
    EXPECT_EQ(a.finalTemperature, b.finalTemperature);
    EXPECT_EQ(a.faults.telemetryPerturbations,
              b.faults.telemetryPerturbations);
    EXPECT_EQ(a.faults.transitionExtraLatency,
              b.faults.transitionExtraLatency);
    EXPECT_EQ(a.faults.fallbackEpochs, b.faults.fallbackEpochs);
    ASSERT_EQ(b.trace.size(), 2u);
    EXPECT_EQ(a.trace[0].start, b.trace[0].start);
    EXPECT_EQ(a.trace[0].domainState, b.trace[0].domainState);
    EXPECT_EQ(a.trace[0].domainCommitted, b.trace[0].domainCommitted);
    EXPECT_EQ(a.trace[0].faults.tableBitFlips,
              b.trace[0].faults.tableBitFlips);
    EXPECT_EQ(a.trace[0].faults.fallbackActive,
              b.trace[0].faults.fallbackActive);
    EXPECT_EQ(a.trace[1].faults.fallbackActive,
              b.trace[1].faults.fallbackActive);
    // The metrics shard re-encodes to identical bytes (canonical
    // ordered maps), which is what byte-identical resume rests on.
    store::StoredCell again = out;
    EXPECT_EQ(store::encodeStoredCell(again), payload);
}

TEST(CellCodec, EveryTruncationFailsCleanly)
{
    const std::string payload =
        store::encodeStoredCell(sampleCell());
    for (std::size_t len = 0; len < payload.size(); ++len) {
        store::StoredCell out;
        std::string err;
        EXPECT_FALSE(store::decodeStoredCell(
            payload.substr(0, len), out, err))
            << "prefix of " << len << " bytes decoded";
        EXPECT_FALSE(err.empty());
    }
    // Trailing garbage is rejected too (strict framing).
    store::StoredCell out;
    std::string err;
    EXPECT_FALSE(store::decodeStoredCell(payload + "x", out, err));
}

TEST(CellCodec, TimingMetricsAreDroppedFromTheShard)
{
    store::StoredCell cell;
    cell.run.ok = true;
    obs::Registry reg;
    reg.counter("run.epochs").add(10);
    reg.counter("profile.oracle_ns", obs::MetricKind::Timing)
        .add(123456);
    cell.metrics = reg.snapshot();

    store::StoredCell out;
    std::string err;
    ASSERT_TRUE(store::decodeStoredCell(
        store::encodeStoredCell(cell), out, err)) << err;
    EXPECT_EQ(out.metrics.counters.count("run.epochs"), 1u);
    EXPECT_EQ(out.metrics.counters.count("profile.oracle_ns"), 0u);
}

// ---------------------------------------------------------------- //
// SweepRunner robustness                                            //
// ---------------------------------------------------------------- //

bench::BenchOptions
smallOptions(unsigned threads)
{
    bench::BenchOptions opts;
    opts.cus = 4;
    opts.scale = 0.25;
    opts.threads = threads;
    return opts;
}

std::vector<bench::SweepCell>
smallGrid(bench::SweepRunner &runner)
{
    std::vector<bench::SweepCell> cells;
    cells.push_back(runner.cell("comd", "STALL", true));
    cells.push_back(runner.cell("comd", "PCSTALL"));
    cells.push_back(runner.cell("dgemm", "STALL"));
    cells.push_back(runner.cell("dgemm", "PCSTALL"));
    return cells;
}

void
expectSameResult(const bench::RunOutcome &a, const bench::RunOutcome &b,
                 const std::string &what)
{
    ASSERT_TRUE(a.ok) << what << ": " << a.error;
    ASSERT_TRUE(b.ok) << what << ": " << b.error;
    EXPECT_EQ(a.result.execTime, b.result.execTime) << what;
    EXPECT_EQ(a.result.energy, b.result.energy) << what;
    EXPECT_EQ(a.result.instructions, b.result.instructions) << what;
    EXPECT_EQ(a.result.predictionAccuracy,
              b.result.predictionAccuracy) << what;
    EXPECT_EQ(a.result.transitions, b.result.transitions) << what;
    EXPECT_EQ(a.result.freqTimeShare, b.result.freqTimeShare) << what;
}

TEST(SweepStore, ResumeFromStoreReproducesFreshRunExactly)
{
    // Reference: no store, everything computed live.
    bench::SweepRunner fresh(smallOptions(2));
    const auto want = fresh.run(smallGrid(fresh));

    const std::string dir = scratchDir("resume");
    bench::BenchOptions with_store = smallOptions(2);
    with_store.storeDir = dir;

    // First pass populates the store...
    {
        bench::SweepRunner writer(with_store);
        const auto out = writer.run(smallGrid(writer));
        ASSERT_NE(writer.store(), nullptr);
        EXPECT_GE(writer.store()->entryCount(), 5u); // 4 cells + base
        for (std::size_t i = 0; i < want.size(); ++i) {
            expectSameResult(want[i].run, out[i].run,
                             "first pass cell " +
                                 std::to_string(i));
        }
    }
    // ...second pass replays it, bit-exact (including the baseline).
    bench::SweepRunner reader(with_store);
    const auto out = reader.run(smallGrid(reader));
    ASSERT_EQ(out.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        expectSameResult(want[i].run, out[i].run,
                         "resumed cell " + std::to_string(i));
    }
    expectSameResult(want[0].baseline, out[0].baseline,
                     "resumed baseline");
}

TEST(SweepStore, ShardUnionEqualsFullEnumeration)
{
    bench::SweepRunner fresh(smallOptions(2));
    const auto want = fresh.run(smallGrid(fresh));

    const std::string dir = scratchDir("shards");
    // Two shard workers, each computing its half of the grid.
    for (unsigned shard = 0; shard < 2; ++shard) {
        bench::BenchOptions opts = smallOptions(2);
        opts.storeDir = dir;
        opts.shardIndex = shard;
        opts.shardCount = 2;
        bench::SweepRunner worker(opts);
        const auto out = worker.run(smallGrid(worker));
        ASSERT_EQ(out.size(), want.size());
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (i % 2 == shard) {
                EXPECT_TRUE(out[i].run.ok) << out[i].run.error;
                EXPECT_FALSE(out[i].run.skipped);
            } else {
                EXPECT_TRUE(out[i].run.skipped);
                EXPECT_FALSE(out[i].run.ok);
            }
        }
    }
    // The unsharded merge pass over the same store reproduces the
    // full enumeration exactly.
    bench::BenchOptions merge_opts = smallOptions(2);
    merge_opts.storeDir = dir;
    bench::SweepRunner merge(merge_opts);
    const auto out = merge.run(smallGrid(merge));
    for (std::size_t i = 0; i < want.size(); ++i) {
        expectSameResult(want[i].run, out[i].run,
                         "merged cell " + std::to_string(i));
        EXPECT_FALSE(out[i].run.skipped);
    }
    expectSameResult(want[0].baseline, out[0].baseline,
                     "merged baseline");
}

TEST(SweepStore, KillMidSweepThenResumeMatchesFreshRun)
{
    bench::SweepRunner fresh(smallOptions(2));
    const auto want = fresh.run(smallGrid(fresh));

    const std::string dir = scratchDir("kill");
    bench::BenchOptions with_store = smallOptions(2);
    with_store.storeDir = dir;

    // Child: same sweep, but the store's test hook SIGKILLs the
    // process right after the second successful put - a mid-sweep
    // crash with the store half-populated.
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::setenv("PCSTALL_TEST_CRASH_AFTER_PUTS", "2", 1);
        bench::SweepRunner victim(with_store);
        victim.run(smallGrid(victim));
        ::_exit(0); // not reached: the put hook kills us first
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "child should have been SIGKILLed mid-sweep";

    store::ResultStore peek(dir);
    EXPECT_EQ(peek.entryCount(), 2u) << "crash left a partial store";

    // Resume: only the missing cells are recomputed, and the merged
    // outcome matches the uninterrupted run exactly.
    bench::SweepRunner resumed(with_store);
    const auto out = resumed.run(smallGrid(resumed));
    ASSERT_EQ(out.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        expectSameResult(want[i].run, out[i].run,
                         "post-crash cell " + std::to_string(i));
    }
    expectSameResult(want[0].baseline, out[0].baseline,
                     "post-crash baseline");
}

TEST(SweepStore, CorruptStoreEntryIsQuarantinedAndRecomputed)
{
    bench::SweepRunner fresh(smallOptions(1));
    std::vector<bench::SweepCell> ref;
    ref.push_back(fresh.cell("comd", "STALL"));
    const auto want = fresh.run(std::move(ref));

    const std::string dir = scratchDir("sweepcorrupt");
    bench::BenchOptions with_store = smallOptions(1);
    with_store.storeDir = dir;
    {
        bench::SweepRunner writer(with_store);
        std::vector<bench::SweepCell> cells;
        cells.push_back(writer.cell("comd", "STALL"));
        writer.run(std::move(cells));
    }
    // Corrupt the one entry on disk.
    store::ResultStore peek(dir);
    ASSERT_EQ(peek.entryCount(), 1u);
    std::string entry;
    for (const auto &f : fs::directory_iterator(dir)) {
        if (f.path().extension() == ".pcres")
            entry = f.path().string();
    }
    ASSERT_FALSE(entry.empty());
    fs::resize_file(entry, fs::file_size(entry) / 2);

    bench::SweepRunner reader(with_store);
    std::vector<bench::SweepCell> cells;
    cells.push_back(reader.cell("comd", "STALL"));
    const auto out = reader.run(std::move(cells));
    expectSameResult(want[0].run, out[0].run, "recomputed cell");
    EXPECT_EQ(peek.quarantinedCount(), 1u);
    // The recompute re-published a valid entry.
    EXPECT_EQ(peek.entryCount(), 1u);
}

TEST(SweepStore, InspectCellsBypassTheStore)
{
    const std::string dir = scratchDir("bypass");
    bench::BenchOptions opts = smallOptions(1);
    opts.storeDir = dir;
    bench::SweepRunner runner(opts);
    std::vector<bench::SweepCell> cells;
    cells.push_back(runner.cell("comd", "STALL"));
    cells.back().inspect = [](const dvfs::DvfsController &) {};
    const auto out = runner.run(std::move(cells));
    EXPECT_TRUE(out[0].run.ok) << out[0].run.error;
    // The inspected cell has side effects the store cannot replay, so
    // nothing was checkpointed for it.
    ASSERT_NE(runner.store(), nullptr);
    EXPECT_EQ(runner.store()->entryCount(), 0u);
}

TEST(SweepWatchdog, CellTimeoutCancelsAndIsNeverRetried)
{
    bench::BenchOptions opts = smallOptions(2);
    opts.cellTimeoutSec = 1e-4; // far below any real cell's wall time
    bench::SweepRunner runner(opts);
    std::atomic<int> factory_calls{0};
    std::vector<bench::SweepCell> cells;
    cells.push_back(runner.cell("comd", "STALL"));
    cells.back().factory = [&](const sim::RunConfig &rc) {
        ++factory_calls;
        return bench::makeController("STALL", rc);
    };
    const auto out = runner.run(std::move(cells));
    ASSERT_FALSE(out[0].run.ok);
    EXPECT_NE(out[0].run.error.find("cell wall-time budget"),
              std::string::npos)
        << out[0].run.error;
    // Timeouts are deterministic budget exhaustion: one attempt only.
    EXPECT_EQ(factory_calls.load(), 1);
}

TEST(SweepRetry, TransientFailureIsRetriedThenSucceeds)
{
    const std::uint64_t failures_before = bench::sweepFailureCount();
    bench::BenchOptions opts = smallOptions(1);
    opts.cellRetries = 2;
    bench::SweepRunner runner(opts);
    std::atomic<int> attempts{0};
    std::vector<bench::SweepCell> cells;
    cells.push_back(runner.cell("comd", "STALL"));
    cells.back().factory = [&](const sim::RunConfig &rc)
        -> std::unique_ptr<dvfs::DvfsController> {
        if (attempts.fetch_add(1) == 0)
            throw std::runtime_error("transient I/O hiccup");
        return bench::makeController("STALL", rc);
    };
    const auto out = runner.run(std::move(cells));
    EXPECT_TRUE(out[0].run.ok) << out[0].run.error;
    EXPECT_EQ(attempts.load(), 2);
    // A retried-then-recovered cell is not a sweep failure.
    EXPECT_EQ(bench::sweepFailureCount(), failures_before);
}

TEST(SweepRetry, DeterministicFatalErrorIsNotRetried)
{
    bench::BenchOptions opts = smallOptions(1);
    opts.cellRetries = 3;
    bench::SweepRunner runner(opts);
    std::atomic<int> attempts{0};
    std::vector<bench::SweepCell> cells;
    cells.push_back(runner.cell("comd", "STALL"));
    cells.back().factory = [&](const sim::RunConfig &)
        -> std::unique_ptr<dvfs::DvfsController> {
        ++attempts;
        fatal("deterministically broken cell");
    };
    const auto out = runner.run(std::move(cells));
    EXPECT_FALSE(out[0].run.ok);
    EXPECT_EQ(attempts.load(), 1)
        << "FatalError cells must not burn retries";
}

TEST(SweepRetry, TransientFailureExhaustsBoundedRetries)
{
    bench::BenchOptions opts = smallOptions(1);
    opts.cellRetries = 2;
    bench::SweepRunner runner(opts);
    std::atomic<int> attempts{0};
    std::vector<bench::SweepCell> cells;
    cells.push_back(runner.cell("comd", "STALL"));
    cells.back().factory = [&](const sim::RunConfig &)
        -> std::unique_ptr<dvfs::DvfsController> {
        ++attempts;
        throw std::runtime_error("always transient");
    };
    const auto out = runner.run(std::move(cells));
    EXPECT_FALSE(out[0].run.ok);
    EXPECT_EQ(attempts.load(), 3) << "1 attempt + 2 retries";
}

// ---------------------------------------------------------------- //
// CLI validation                                                    //
// ---------------------------------------------------------------- //

bench::BenchOptions
parseArgs(std::vector<std::string> args)
{
    std::vector<char *> argv;
    args.insert(args.begin(), "test_store");
    for (std::string &a : args)
        argv.push_back(a.data());
    return bench::BenchOptions::parse(static_cast<int>(argv.size()),
                                      argv.data());
}

TEST(FarmCli, ValidShardAndFarmFlagsParse)
{
    const auto opts = parseArgs({"--shard", "1/4", "--store", "/tmp/s",
                                 "--resume", "--cell-timeout", "2.5",
                                 "--cell-retries", "5"});
    EXPECT_EQ(opts.shardIndex, 1u);
    EXPECT_EQ(opts.shardCount, 4u);
    EXPECT_EQ(opts.storeDir, "/tmp/s");
    EXPECT_TRUE(opts.resume);
    EXPECT_DOUBLE_EQ(opts.cellTimeoutSec, 2.5);
    EXPECT_EQ(opts.cellRetries, 5u);
}

TEST(FarmCli, MalformedShardFallsBackToDefaults)
{
    // Index out of range.
    EXPECT_EQ(parseArgs({"--shard", "3/2"}).shardCount, 0u);
    // Not i/N shaped.
    EXPECT_EQ(parseArgs({"--shard", "banana"}).shardCount, 0u);
    EXPECT_EQ(parseArgs({"--shard", "1/2/3"}).shardCount, 0u);
    // Zero shards.
    EXPECT_EQ(parseArgs({"--shard", "0/0"}).shardCount, 0u);
}

TEST(FarmCli, NegativeTimeoutAndResumeWithoutStoreAreRecoverable)
{
    EXPECT_DOUBLE_EQ(
        parseArgs({"--cell-timeout", "-1"}).cellTimeoutSec, 0.0);
    // --resume without --store is diagnosed; the flag stays off.
    EXPECT_FALSE(parseArgs({"--resume"}).resume);
}

} // namespace
