/** @file Unit tests for src/gpu: wavefronts, CUs, chip event loop. */

#include <gtest/gtest.h>

#include "expect_fatal.hh"

#include <memory>

#include "gpu/gpu_chip.hh"
#include "isa/kernel_builder.hh"

using namespace pcstall;
using namespace pcstall::gpu;

namespace
{

std::shared_ptr<const isa::Application>
computeApp(std::uint32_t workgroups = 4, std::uint32_t trips = 50)
{
    isa::KernelBuilder b("compute");
    b.grid(workgroups, 4);
    b.loop(trips);
    b.valu(4, 8);
    b.endLoop();
    auto app = std::make_shared<isa::Application>();
    app->name = "compute_app";
    app->launches.push_back(b.build());
    app->assignCodeBases();
    return app;
}

std::shared_ptr<const isa::Application>
memoryApp(std::uint32_t workgroups = 4, std::uint32_t trips = 30)
{
    isa::KernelBuilder b("memory");
    const auto r = b.region("data", 64 << 20);
    b.grid(workgroups, 4);
    b.loop(trips);
    b.load(r, isa::AccessPattern::Random);
    b.load(r, isa::AccessPattern::Random);
    b.waitcnt(0);
    b.valu(2, 2);
    b.endLoop();
    auto app = std::make_shared<isa::Application>();
    app->name = "memory_app";
    app->launches.push_back(b.build());
    app->assignCodeBases();
    return app;
}

GpuConfig
smallGpu(std::uint32_t cus = 2)
{
    GpuConfig cfg;
    cfg.numCus = cus;
    cfg.waveSlotsPerCu = 8;
    return cfg;
}

} // namespace

TEST(GpuChip, RunsComputeKernelToCompletion)
{
    GpuChip chip(smallGpu(), computeApp());
    bool done = false;
    for (int epoch = 1; epoch <= 200 && !done; ++epoch)
        done = chip.runUntil(epoch * tickUs);
    EXPECT_TRUE(done);
    // 4 wgs x 4 waves x (50 trips x 9 body + 1 endpgm) committed.
    EXPECT_EQ(chip.totalCommitted(), 4u * 4u * (50u * 9u + 1u));
}

TEST(GpuChip, CommitCountIndependentOfEpochLength)
{
    GpuChip a(smallGpu(), computeApp());
    GpuChip b(smallGpu(), computeApp());
    bool done_a = false, done_b = false;
    for (int i = 1; i <= 400 && !done_a; ++i)
        done_a = a.runUntil(i * (tickUs / 2));
    for (int i = 1; i <= 100 && !done_b; ++i)
        done_b = b.runUntil(i * (2 * tickUs));
    ASSERT_TRUE(done_a);
    ASSERT_TRUE(done_b);
    EXPECT_EQ(a.totalCommitted(), b.totalCommitted());
}

TEST(GpuChip, HigherFrequencyFinishesComputeSooner)
{
    auto run_at = [](Freq freq) {
        GpuConfig cfg = smallGpu();
        cfg.defaultFreq = freq;
        GpuChip chip(cfg, computeApp(4, 200));
        for (int epoch = 1; epoch <= 2000; ++epoch)
            if (chip.runUntil(epoch * tickUs))
                break;
        return chip.lastCommitTick();
    };
    const Tick fast = run_at(2'200 * freqMHz);
    const Tick slow = run_at(1'300 * freqMHz);
    ASSERT_GT(fast, 0);
    ASSERT_GT(slow, 0);
    // Compute-bound: runtime close to inversely proportional.
    const double ratio = static_cast<double>(slow) /
        static_cast<double>(fast);
    EXPECT_NEAR(ratio, 2200.0 / 1300.0, 0.25);
}

TEST(GpuChip, MemoryBoundIsFrequencyInsensitive)
{
    auto run_at = [](Freq freq) {
        GpuConfig cfg = smallGpu();
        cfg.defaultFreq = freq;
        GpuChip chip(cfg, memoryApp(4, 60));
        for (int epoch = 1; epoch <= 4000; ++epoch)
            if (chip.runUntil(epoch * tickUs))
                break;
        return chip.lastCommitTick();
    };
    const Tick fast = run_at(2'200 * freqMHz);
    const Tick slow = run_at(1'300 * freqMHz);
    const double ratio = static_cast<double>(slow) /
        static_cast<double>(fast);
    // Much less speedup than the 1.69x clock ratio.
    EXPECT_LT(ratio, 1.35);
}

TEST(GpuChip, EpochStatsSumToLifetime)
{
    GpuChip chip(smallGpu(), computeApp());
    std::uint64_t harvested = 0;
    Tick start = 0;
    bool done = false;
    while (!done && start < 400 * tickUs) {
        done = chip.runUntil(start + tickUs);
        const EpochRecord rec = chip.harvestEpoch(start);
        harvested += rec.totalCommitted();
        start += tickUs;
    }
    EXPECT_TRUE(done);
    EXPECT_EQ(harvested, chip.totalCommitted());
}

TEST(GpuChip, WaveStallAccountingForMemoryApp)
{
    GpuChip chip(smallGpu(1), memoryApp(2, 20));
    chip.runUntil(20 * tickUs);
    const EpochRecord rec = chip.harvestEpoch(0);
    // Memory-bound waves must report substantial stall time.
    Tick total_stall = 0;
    std::uint64_t committed = 0;
    for (const auto &w : rec.waves) {
        total_stall += w.memStall;
        committed += w.committed;
    }
    EXPECT_GT(committed, 0u);
    EXPECT_GT(total_stall, 0);
    // CU-level async counters populated too.
    EXPECT_GT(rec.cus[0].memInterval, 0);
    EXPECT_GT(rec.cus[0].loadStall, 0);
    EXPECT_GT(rec.cus[0].leadLoad, 0);
}

TEST(GpuChip, ComputeAppHasLowStall)
{
    GpuChip chip(smallGpu(1), computeApp(2, 100));
    chip.runUntil(10 * tickUs);
    const EpochRecord rec = chip.harvestEpoch(0);
    EXPECT_EQ(rec.cus[0].loadStall, 0);
    EXPECT_EQ(rec.cus[0].memInterval, 0);
    EXPECT_GT(rec.cus[0].busy, 0);
}

TEST(GpuChip, SnapshotCopyDivergesDeterministically)
{
    GpuChip chip(smallGpu(), memoryApp(8, 40));
    chip.runUntil(5 * tickUs);
    chip.harvestEpoch(0);

    GpuChip copy1 = chip;
    GpuChip copy2 = chip;
    copy1.runUntil(chip.now() + 5 * tickUs);
    copy2.runUntil(chip.now() + 5 * tickUs);
    // Identical copies evolve identically.
    EXPECT_EQ(copy1.totalCommitted(), copy2.totalCommitted());
    // And the original is untouched.
    EXPECT_LT(chip.totalCommitted(), copy1.totalCommitted());
}

TEST(GpuChip, FrequencyChangeAffectsCopyOnly)
{
    GpuChip chip(smallGpu(), computeApp(8, 400));
    chip.runUntil(2 * tickUs);
    chip.harvestEpoch(0);

    GpuChip fast = chip;
    for (std::uint32_t cu = 0; cu < 2; ++cu)
        fast.setCuFrequency(cu, 2'200 * freqMHz, 0);
    fast.runUntil(chip.now() + 10 * tickUs);
    chip.runUntil(chip.now() + 10 * tickUs);
    EXPECT_GT(fast.totalCommitted(), chip.totalCommitted());
}

TEST(GpuChip, TransitionLatencyStallsIssue)
{
    GpuChip a(smallGpu(1), computeApp(2, 300));
    GpuChip b(smallGpu(1), computeApp(2, 300));
    a.runUntil(tickUs);
    b.runUntil(tickUs);
    a.harvestEpoch(0);
    b.harvestEpoch(0);
    // Same target frequency; a pays a long transition stall.
    a.setCuFrequency(0, 2'000 * freqMHz, 100 * tickNs);
    b.setCuFrequency(0, 2'000 * freqMHz, 0);
    a.runUntil(2 * tickUs);
    b.runUntil(2 * tickUs);
    const EpochRecord ra = a.harvestEpoch(tickUs);
    const EpochRecord rb = b.harvestEpoch(tickUs);
    EXPECT_LT(ra.cus[0].committed, rb.cus[0].committed);
}

TEST(GpuChip, MultiKernelLaunchesRunSequentially)
{
    isa::KernelBuilder k1("first");
    k1.grid(2, 4);
    k1.valu(4, 10);
    isa::KernelBuilder k2("second");
    k2.grid(2, 4);
    k2.valu(4, 10);
    auto app = std::make_shared<isa::Application>();
    app->name = "two_kernels";
    app->launches.push_back(k1.build());
    app->launches.push_back(k2.build());
    app->assignCodeBases();

    GpuChip chip(smallGpu(), app);
    bool done = false;
    for (int i = 1; i <= 100 && !done; ++i)
        done = chip.runUntil(i * tickUs);
    EXPECT_TRUE(done);
    EXPECT_EQ(chip.totalCommitted(), 2u * (2u * 4u * 11u));
}

TEST(GpuChip, BarrierSynchronizesWorkgroup)
{
    isa::KernelBuilder b("bar");
    b.grid(1, 4);
    b.valu(4, 4);
    b.barrier();
    b.valu(4, 4);
    auto app = std::make_shared<isa::Application>();
    app->name = "barrier_app";
    app->launches.push_back(b.build());
    app->assignCodeBases();

    GpuChip chip(smallGpu(1), app);
    bool done = false;
    for (int i = 1; i <= 50 && !done; ++i)
        done = chip.runUntil(i * tickUs);
    EXPECT_TRUE(done);
    // 4 waves x (4 + barrier + 4 + endpgm) instructions.
    EXPECT_EQ(chip.totalCommitted(), 4u * 10u);
}

TEST(GpuChip, WaveSnapshotsExposeResidentWaves)
{
    GpuChip chip(smallGpu(), computeApp(8, 400));
    chip.runUntil(tickUs);
    const auto snaps = chip.waveSnapshots();
    EXPECT_FALSE(snaps.empty());
    for (const auto &s : snaps) {
        EXPECT_LT(s.cu, 2u);
        EXPECT_LT(s.slot, 8u);
        EXPECT_GE(s.pcAddr, 0x4000'0000ULL); // code base applied
    }
    // Age ranks within a CU are unique.
    std::vector<std::uint32_t> ranks;
    for (const auto &s : snaps)
        if (s.cu == 0)
            ranks.push_back(s.ageRank);
    std::sort(ranks.begin(), ranks.end());
    for (std::size_t i = 0; i < ranks.size(); ++i)
        EXPECT_EQ(ranks[i], i);
}

TEST(GpuChip, DivergentTripCountsVaryPerWave)
{
    isa::KernelBuilder b("diverge");
    b.grid(4, 4).seed(7);
    b.loop(50, 40);
    b.valu(4, 4);
    b.endLoop();
    auto app = std::make_shared<isa::Application>();
    app->name = "divergent";
    app->launches.push_back(b.build());
    app->assignCodeBases();

    GpuChip chip(smallGpu(1), app);
    chip.runUntil(2 * tickUs);
    const EpochRecord rec = chip.harvestEpoch(0);
    // Some waves finish far earlier than others -> committed spread.
    std::uint64_t min_c = ~0ULL, max_c = 0;
    for (const auto &w : rec.waves) {
        min_c = std::min(min_c, w.committed);
        max_c = std::max(max_c, w.committed);
    }
    EXPECT_GT(max_c, min_c);
}

TEST(TransitionLatency, MatchesPaperPoints)
{
    EXPECT_EQ(transitionLatencyFor(1 * tickUs), 4 * tickNs);
    EXPECT_EQ(transitionLatencyFor(10 * tickUs), 40 * tickNs);
    EXPECT_EQ(transitionLatencyFor(50 * tickUs), 200 * tickNs);
    EXPECT_EQ(transitionLatencyFor(100 * tickUs), 400 * tickNs);
    // Clamped outside and monotone inside.
    EXPECT_EQ(transitionLatencyFor(tickUs / 2), 4 * tickNs);
    EXPECT_EQ(transitionLatencyFor(200 * tickUs), 400 * tickNs);
    EXPECT_GT(transitionLatencyFor(30 * tickUs),
              transitionLatencyFor(10 * tickUs));
}

TEST(GpuChip, WaveCommittedSumsMatchCuCommitted)
{
    GpuChip chip(smallGpu(), memoryApp(8, 40));
    Tick t = 0;
    for (int e = 0; e < 6; ++e) {
        const bool done = chip.runUntil(t + tickUs);
        const EpochRecord rec = chip.harvestEpoch(t);
        t += tickUs;
        std::vector<std::uint64_t> per_cu(2, 0);
        for (const auto &w : rec.waves)
            per_cu[w.cu] += w.committed;
        for (std::uint32_t cu = 0; cu < 2; ++cu)
            EXPECT_EQ(per_cu[cu], rec.cus[cu].committed) << "epoch " << e;
        if (done)
            break;
    }
}

TEST(GpuChip, StallClippedAtEpochBoundary)
{
    // No wave can report more stall time than the epoch contains.
    GpuChip chip(smallGpu(), memoryApp(8, 40));
    Tick t = 0;
    for (int e = 0; e < 8; ++e) {
        const bool done = chip.runUntil(t + tickUs);
        const EpochRecord rec = chip.harvestEpoch(t);
        t += tickUs;
        for (const auto &w : rec.waves) {
            EXPECT_LE(w.memStall, tickUs);
            EXPECT_LE(w.barrierStall, tickUs);
        }
        for (const auto &cu : rec.cus) {
            EXPECT_LE(cu.loadStall, tickUs);
            EXPECT_LE(cu.storeStall, tickUs);
            EXPECT_LE(cu.memInterval, tickUs);
        }
        if (done)
            break;
    }
}

TEST(GpuChip, WaitcntAllowsOutstandingRequests)
{
    // With s_waitcnt(1), one load may remain in flight: the wave
    // commits more per unit time than with a full join.
    auto make_app = [](std::uint16_t max_outstanding) {
        isa::KernelBuilder b("w");
        const auto r = b.region("data", 64 << 20);
        b.grid(2, 4);
        b.loop(60);
        b.load(r, isa::AccessPattern::Random);
        b.load(r, isa::AccessPattern::Random);
        b.waitcnt(max_outstanding);
        b.valu(2, 2);
        b.endLoop();
        auto app = std::make_shared<isa::Application>();
        app->name = "w";
        app->launches.push_back(b.build());
        app->assignCodeBases();
        return app;
    };
    auto run = [&](std::uint16_t n) {
        GpuChip chip(smallGpu(1), make_app(n));
        for (int e = 1; e <= 1000; ++e)
            if (chip.runUntil(e * tickUs))
                break;
        return chip.lastCommitTick();
    };
    EXPECT_LT(run(1), run(0));
}

TEST(GpuChip, BarrierStallIsAccounted)
{
    // Eight waves per workgroup compete for four SIMDs, plus memory
    // latency jitter: arrivals at the barrier stagger, so the early
    // waves must report barrier wait time.
    isa::KernelBuilder b("bar");
    const auto r = b.region("data", 64 << 20);
    b.grid(1, 8).seed(3);
    b.loop(20);
    b.load(r, isa::AccessPattern::Random);
    b.waitcnt(0);
    b.valu(4, 4);
    b.endLoop();
    b.barrier();
    auto app = std::make_shared<isa::Application>();
    app->name = "bar";
    app->launches.push_back(b.build());
    app->assignCodeBases();

    GpuChip chip(smallGpu(1), app);
    Tick total_barrier = 0;
    Tick t = 0;
    bool done = false;
    while (!done && t < 1000 * tickUs) {
        done = chip.runUntil(t + tickUs);
        const EpochRecord rec = chip.harvestEpoch(t);
        t += tickUs;
        for (const auto &w : rec.waves)
            total_barrier += w.barrierStall;
    }
    ASSERT_TRUE(done);
    EXPECT_GT(total_barrier, 0);
}

TEST(GpuChip, MoreSimdsRaiseThroughput)
{
    auto run_with = [](std::uint32_t simds) {
        GpuConfig cfg = smallGpu(1);
        cfg.simdsPerCu = simds;
        cfg.waveSlotsPerCu = 16;
        GpuChip chip(cfg, computeApp(4, 400));
        chip.runUntil(4 * tickUs);
        return chip.totalCommitted();
    };
    EXPECT_GT(run_with(4), run_with(1));
    EXPECT_GE(run_with(2), run_with(1));
}

TEST(GpuChip, SnapshotsIncludeLaunchCodeBase)
{
    // Waves from the second kernel must expose that kernel's PC base.
    isa::KernelBuilder k1("alpha");
    k1.grid(2, 4);
    k1.valu(4, 4);
    isa::KernelBuilder k2("beta");
    k2.grid(2, 4);
    k2.loop(4000);
    k2.valu(4, 4);
    k2.endLoop();
    auto app = std::make_shared<isa::Application>();
    app->name = "two";
    app->launches.push_back(k1.build());
    app->launches.push_back(k2.build());
    app->assignCodeBases();
    const std::uint64_t beta_base = app->launches[1].codeBase;

    GpuChip chip(smallGpu(1), app);
    chip.runUntil(20 * tickUs); // well into kernel beta
    bool saw_beta = false;
    for (const auto &s : chip.waveSnapshots())
        if (s.pcAddr >= beta_base)
            saw_beta = true;
    EXPECT_TRUE(saw_beta);
}

using GpuDeath = ::testing::Test;

TEST(GpuDeath, RejectsEmptyApplication)
{
    auto app = std::make_shared<isa::Application>();
    app->name = "empty";
    EXPECT_FATAL(GpuChip(smallGpu(), app), "no kernel launches");
}

TEST(GpuDeath, RejectsOversizedWorkgroup)
{
    isa::KernelBuilder b("big_wg");
    b.grid(1, 64); // 64 waves > 8 slots
    b.valu(1, 1);
    auto app = std::make_shared<isa::Application>();
    app->name = "big";
    app->launches.push_back(b.build());
    EXPECT_FATAL(GpuChip(smallGpu(), app), "does not fit");
}
