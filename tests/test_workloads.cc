/** @file Unit tests for src/workloads: the Table II suite. */

#include <gtest/gtest.h>

#include "expect_fatal.hh"

#include "gpu/gpu_chip.hh"
#include "workloads/kernel_parser.hh"
#include "workloads/kernel_writer.hh"
#include "workloads/workloads.hh"

using namespace pcstall;
using namespace pcstall::workloads;

namespace
{

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.numCus = 4;
    p.scale = 0.5;
    return p;
}

} // namespace

TEST(Workloads, TableHasSixteenEntries)
{
    const auto &table = workloadTable();
    EXPECT_EQ(table.size(), 16u);
    int hpc = 0, mi = 0;
    for (const auto &info : table) {
        if (info.suite == "HPC")
            ++hpc;
        else if (info.suite == "MI")
            ++mi;
    }
    EXPECT_EQ(hpc, 9);
    EXPECT_EQ(mi, 7);
}

TEST(Workloads, KernelCountsMatchTableII)
{
    const auto p = smallParams();
    for (const auto &info : workloadTable()) {
        const auto app = makeWorkload(info.name, p);
        EXPECT_EQ(app.uniqueKernelCount(), info.uniqueKernels)
            << info.name;
    }
    EXPECT_EQ(makeWorkload("lulesh", p).uniqueKernelCount(), 27u);
    EXPECT_EQ(makeWorkload("minife", p).uniqueKernelCount(), 3u);
    EXPECT_EQ(makeWorkload("pennant", p).uniqueKernelCount(), 5u);
    EXPECT_EQ(makeWorkload("hacc", p).uniqueKernelCount(), 2u);
}

TEST(Workloads, AllValidateAndHaveCodeBases)
{
    const auto p = smallParams();
    for (const auto &app : makeAllWorkloads(p)) {
        ASSERT_FALSE(app.launches.empty()) << app.name;
        for (const auto &k : app.launches) {
            EXPECT_NO_FATAL_FAILURE(k.validate());
            EXPECT_GE(k.codeBase, 0x4000'0000ULL) << app.name;
        }
    }
}

TEST(Workloads, GridsScaleWithCuCount)
{
    WorkloadParams small = smallParams();
    WorkloadParams big = smallParams();
    big.numCus = 16;
    const auto app_s = makeWorkload("comd", small);
    const auto app_b = makeWorkload("comd", big);
    EXPECT_EQ(app_b.launches[0].numWorkgroups,
              4 * app_s.launches[0].numWorkgroups);
}

TEST(Workloads, ScaleChangesWorkAmount)
{
    // Iterative apps scale by launch count (kernels per timestep are
    // fixed-size); streaming apps also scale trip counts.
    WorkloadParams one = smallParams();
    one.scale = 1.0;
    WorkloadParams half = smallParams();
    half.scale = 0.4;
    EXPECT_GT(makeWorkload("comd", one).launches.size(),
              makeWorkload("comd", half).launches.size());
    EXPECT_GT(makeWorkload("hpgmg", one).launches[0].loops[0].baseTrips,
              makeWorkload("hpgmg", half).launches[0].loops[0].baseTrips);
}

TEST(Workloads, QuickSHasDivergentTrips)
{
    const auto app = makeWorkload("quickS", smallParams());
    bool divergent = false;
    for (const auto &loop : app.launches[0].loops)
        if (loop.tripVariation > 0)
            divergent = true;
    EXPECT_TRUE(divergent);
}

TEST(Workloads, BwdPoolIsUniform)
{
    const auto app = makeWorkload("BwdPool", smallParams());
    for (const auto &launch : app.launches) {
        for (const auto &loop : launch.loops)
            EXPECT_EQ(loop.tripVariation, 0u);
        // Every launch is the same steady kernel.
        EXPECT_EQ(launch.name, app.launches[0].name);
        EXPECT_EQ(launch.code.size(), app.launches[0].code.size());
    }
}

TEST(Workloads, XsbenchIsLoadDominated)
{
    const auto app = makeWorkload("xsbench", smallParams());
    int loads = 0, valus = 0;
    for (const auto &ins : app.launches[0].code) {
        if (ins.op == isa::OpType::VMemLoad)
            ++loads;
        else if (ins.op == isa::OpType::VAlu)
            ++valus;
    }
    EXPECT_GT(loads, 0);
    EXPECT_LT(valus, 10);
}

TEST(Workloads, DgemmIsComputeDominated)
{
    // dgemm's FMA region is a long loop of pure compute; weigh static
    // instruction counts by loop trip counts to compare dynamic work.
    const auto app = makeWorkload("dgemm", smallParams());
    // Each unrolled k-tile carries an FMA loop an order of magnitude
    // longer than its tile-load loop.
    const auto &k = app.launches[0];
    std::uint32_t longest = 0, shortest = ~0u;
    for (const auto &loop : k.loops) {
        longest = std::max(longest, loop.baseTrips);
        shortest = std::min(shortest, loop.baseTrips);
    }
    EXPECT_GE(longest, 40u);
    EXPECT_GE(longest, shortest * 5);
}

TEST(Workloads, UnknownNameRejected)
{
    EXPECT_FALSE(isWorkload("nonexistent"));
    EXPECT_TRUE(isWorkload("comd"));
    EXPECT_FATAL(makeWorkload("nonexistent", smallParams()), "unknown workload");
}

TEST(Workloads, DeterministicForSameSeed)
{
    const auto a = makeWorkload("quickS", smallParams());
    const auto b = makeWorkload("quickS", smallParams());
    ASSERT_EQ(a.launches.size(), b.launches.size());
    EXPECT_EQ(a.launches[0].seed, b.launches[0].seed);
    EXPECT_EQ(a.launches[0].code.size(), b.launches[0].code.size());
}

TEST(KernelParser, ParsesWellFormedApplication)
{
    const std::string text = R"(
# CoMD-like timestep
kernel force
  grid 16 4
  seed 7
  region pos 16M
  region neigh 32M
  loop 22
    load neigh stream 16
    load pos random
    waitcnt 0
    valu 2 3
  endloop
  loop 85
    valu 4 4
    lds 8 1
  endloop
  store pos stream 16
endkernel

app comd = force force force
)";
    const auto result = parseApplication(text);
    ASSERT_TRUE(result.ok()) << result.error;
    const isa::Application &app = *result.app;
    EXPECT_EQ(app.name, "comd");
    ASSERT_EQ(app.launches.size(), 3u);
    EXPECT_EQ(app.uniqueKernelCount(), 1u);
    const isa::Kernel &k = app.launches[0];
    EXPECT_EQ(k.name, "force");
    EXPECT_EQ(k.numWorkgroups, 16u);
    EXPECT_EQ(k.seed, 7u);
    ASSERT_EQ(k.regions.size(), 2u);
    EXPECT_EQ(k.regions[1].sizeBytes, 32u << 20);
    EXPECT_EQ(k.loops.size(), 2u);
    EXPECT_NO_FATAL_FAILURE(k.validate());
    // Relaunches share a code base.
    EXPECT_EQ(app.launches[0].codeBase, app.launches[2].codeBase);
}

TEST(KernelParser, ParsedAppRunsOnTheGpu)
{
    const std::string text = R"(
kernel tiny
  grid 4 4
  region data 1M
  loop 50
    load data random
    waitcnt 0
    valu 4 4
  endloop
endkernel
app t = tiny tiny
)";
    const auto result = parseApplication(text);
    ASSERT_TRUE(result.ok()) << result.error;
    gpu::GpuConfig cfg;
    cfg.numCus = 2;
    gpu::GpuChip chip(cfg, std::make_shared<const isa::Application>(
                               *result.app));
    bool done = false;
    for (int e = 1; e <= 500 && !done; ++e)
        done = chip.runUntil(e * tickUs);
    EXPECT_TRUE(done);
    // 2 launches x 4 wgs x 4 waves x (50*(4+2) + branch...) > 0.
    EXPECT_GT(chip.totalCommitted(), 1000u);
}

TEST(KernelParser, DivergentLoopsAndPatterns)
{
    const std::string text = R"(
kernel mc
  grid 8 4
  region tbl 64M
  loop 40 30
    load tbl sharedhot
    waitcnt 0
    salu 2
  endloop
endkernel
app mc = mc
)";
    const auto result = parseApplication(text);
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.app->launches[0].loops[0].tripVariation, 30u);
}

TEST(KernelParser, ReportsErrorsWithLineNumbers)
{
    auto expect_error = [](const std::string &text,
                           const std::string &fragment) {
        const auto result = parseApplication(text);
        EXPECT_FALSE(result.ok());
        EXPECT_NE(result.error.find(fragment), std::string::npos)
            << result.error;
    };
    expect_error("valu 4 4\n", "outside a kernel");
    expect_error("kernel k\nbogus 1\nendkernel\napp a = k\n",
                 "unknown statement");
    expect_error("kernel k\nvalu 4 1\nendkernel\napp a = missing\n",
                 "unknown kernel");
    expect_error("kernel k\nloop 5\nvalu 4 1\nendkernel\napp a = k\n",
                 "unclosed");
    expect_error("kernel k\nvalu 4 1\nendkernel\n", "missing 'app");
    expect_error("kernel k\nload nowhere stream\nendkernel\napp a = k\n",
                 "expected: load");
    expect_error("kernel k\nregion r 0\nendkernel\napp a = k\n",
                 "region");
}

TEST(KernelParser, SizeSuffixes)
{
    const std::string text = R"(
kernel k
  region a 512
  region b 16K
  region c 2M
  region d 1G
  load a stream
  waitcnt 0
endkernel
app s = k
)";
    const auto result = parseApplication(text);
    ASSERT_TRUE(result.ok()) << result.error;
    const auto &regions = result.app->launches[0].regions;
    EXPECT_EQ(regions[0].sizeBytes, 512u);
    EXPECT_EQ(regions[1].sizeBytes, 16u * 1024);
    EXPECT_EQ(regions[2].sizeBytes, 2u << 20);
    EXPECT_EQ(regions[3].sizeBytes, 1ull << 30);
}

TEST(KernelParser, FileNotFound)
{
    const auto result = parseApplicationFile("/nonexistent/file.k");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("cannot open"), std::string::npos);
}

namespace
{

/** Completion time of @p name at a static frequency (tiny scale). */
Tick
runtimeAt(const std::string &name, Freq freq)
{
    WorkloadParams p;
    p.numCus = 2;
    p.scale = 0.15;
    auto app = std::make_shared<const isa::Application>(
        makeWorkload(name, p));
    gpu::GpuConfig cfg;
    cfg.numCus = 2;
    cfg.defaultFreq = freq;
    gpu::GpuChip chip(cfg, app);
    for (int e = 1; e <= 5000; ++e)
        if (chip.runUntil(e * tickUs))
            break;
    return chip.lastCommitTick();
}

} // namespace

TEST(WorkloadCharacter, HaccIsFrequencySensitive)
{
    const double speedup =
        static_cast<double>(runtimeAt("hacc", 1'300 * freqMHz)) /
        static_cast<double>(runtimeAt("hacc", 2'200 * freqMHz));
    // Clock ratio is 1.69; a compute-bound app gets most of it.
    EXPECT_GT(speedup, 1.35);
}

TEST(WorkloadCharacter, XsbenchIsFrequencyInsensitive)
{
    const double speedup =
        static_cast<double>(runtimeAt("xsbench", 1'300 * freqMHz)) /
        static_cast<double>(runtimeAt("xsbench", 2'200 * freqMHz));
    EXPECT_LT(speedup, 1.25);
}

TEST(WorkloadCharacter, HpgmgIsFrequencyInsensitive)
{
    const double speedup =
        static_cast<double>(runtimeAt("hpgmg", 1'300 * freqMHz)) /
        static_cast<double>(runtimeAt("hpgmg", 2'200 * freqMHz));
    EXPECT_LT(speedup, 1.3);
}

TEST(WorkloadCharacter, DgemmMoreSensitiveThanPooling)
{
    const double dgemm_speedup =
        static_cast<double>(runtimeAt("dgemm", 1'300 * freqMHz)) /
        static_cast<double>(runtimeAt("dgemm", 2'200 * freqMHz));
    const double pool_speedup =
        static_cast<double>(runtimeAt("FwdPool", 1'300 * freqMHz)) /
        static_cast<double>(runtimeAt("FwdPool", 2'200 * freqMHz));
    EXPECT_GT(dgemm_speedup, pool_speedup);
}

TEST(KernelWriter, RoundTripsEveryTableIIWorkload)
{
    // write -> parse must reconstruct the same structure for every
    // built-in generator (the strongest property the format needs).
    const auto p = smallParams();
    for (const auto &info : workloadTable()) {
        const isa::Application original = makeWorkload(info.name, p);
        const std::string text = applicationToText(original);
        const auto parsed = parseApplication(text);
        ASSERT_TRUE(parsed.ok())
            << info.name << ": " << parsed.error << "\n" << text;
        const isa::Application &round = *parsed.app;
        EXPECT_EQ(round.name, original.name);
        ASSERT_EQ(round.launches.size(), original.launches.size())
            << info.name;
        EXPECT_EQ(round.uniqueKernelCount(),
                  original.uniqueKernelCount());
        for (std::size_t i = 0; i < round.launches.size(); ++i) {
            const isa::Kernel &a = original.launches[i];
            const isa::Kernel &b = round.launches[i];
            ASSERT_EQ(b.code.size(), a.code.size())
                << info.name << " launch " << i;
            EXPECT_EQ(b.numWorkgroups, a.numWorkgroups);
            EXPECT_EQ(b.wavesPerWorkgroup, a.wavesPerWorkgroup);
            EXPECT_EQ(b.seed, a.seed);
            ASSERT_EQ(b.loops.size(), a.loops.size());
            for (std::size_t l = 0; l < a.loops.size(); ++l) {
                EXPECT_EQ(b.loops[l].baseTrips, a.loops[l].baseTrips);
                EXPECT_EQ(b.loops[l].tripVariation,
                          a.loops[l].tripVariation);
            }
            for (std::size_t c = 0; c < a.code.size(); ++c) {
                EXPECT_EQ(b.code[c].op, a.code[c].op)
                    << info.name << " launch " << i << " ins " << c;
                EXPECT_EQ(b.code[c].latency, a.code[c].latency);
            }
        }
    }
}

TEST(KernelWriter, RoundTripBehaviourMatches)
{
    // Parsed-back applications must simulate identically.
    const auto p = smallParams();
    const isa::Application original = makeWorkload("quickS", p);
    const auto parsed = parseApplication(applicationToText(original));
    ASSERT_TRUE(parsed.ok()) << parsed.error;

    auto run = [](const isa::Application &app) {
        gpu::GpuConfig cfg;
        cfg.numCus = 2;
        gpu::GpuChip chip(
            cfg, std::make_shared<const isa::Application>(app));
        for (int e = 1; e <= 5000; ++e)
            if (chip.runUntil(e * tickUs))
                break;
        return std::make_pair(chip.totalCommitted(),
                              chip.lastCommitTick());
    };
    EXPECT_EQ(run(original), run(*parsed.app));
}

TEST(KernelParser, MalformedInputsFailCleanlyWithLineNumbers)
{
    // Every malformed script must produce a "line N:" diagnostic, not
    // a crash or a process exit (the builder's fatal() checks must be
    // unreachable from file input).
    auto expect_line_error = [](const std::string &text,
                                const std::string &fragment) {
        const auto result = parseApplication(text);
        ASSERT_FALSE(result.ok()) << "accepted: " << text;
        EXPECT_NE(result.error.find("line "), std::string::npos)
            << result.error;
        EXPECT_NE(result.error.find(fragment), std::string::npos)
            << result.error;
    };

    // Truncated files.
    expect_line_error("kernel k\n", "unterminated kernel");
    expect_line_error("kernel k\nvalu 4 1\n", "unterminated kernel");
    expect_line_error("kernel k\nloop 5\nvalu 4 1\n",
                      "unterminated kernel");
    expect_line_error("", "missing 'app");

    // Structurally empty bodies.
    expect_line_error("kernel k\nendkernel\napp a = k\n", "no body");
    expect_line_error("kernel k\nvalu 4 1\nloop 5\nendloop\n"
                      "endkernel\napp a = k\n",
                      "empty loop body");

    // Out-of-range grid.
    expect_line_error("kernel k\ngrid 0 4\nvalu 4 1\nendkernel\n"
                      "app a = k\n",
                      "at least one workgroup");
    expect_line_error("kernel k\ngrid 8 0\nvalu 4 1\nendkernel\n"
                      "app a = k\n",
                      "waves must be in [1, 64]");
    expect_line_error("kernel k\ngrid 8 65\nvalu 4 1\nendkernel\n"
                      "app a = k\n",
                      "waves must be in [1, 64]");

    // Degenerate loops.
    expect_line_error("kernel k\nloop 0\nvalu 4 1\nendloop\n"
                      "endkernel\napp a = k\n",
                      "at least one trip");
    expect_line_error("kernel k\nloop 5 5\nvalu 4 1\nendloop\n"
                      "endkernel\napp a = k\n",
                      "variation must be below");
    expect_line_error("kernel k\nvalu 4 1\nendloop\nendkernel\n"
                      "app a = k\n",
                      "endloop without loop");

    // A barrier inside a divergent loop would deadlock the CU.
    expect_line_error("kernel k\nloop 8 4\nvalu 4 1\nbarrier\n"
                      "endloop\nendkernel\napp a = k\n",
                      "divergent loop");

    // Out-of-range operation parameters.
    expect_line_error("kernel k\nvalu 0 1\nendkernel\napp a = k\n",
                      "latency must be in");
    expect_line_error("kernel k\nvalu 70000 1\nendkernel\napp a = k\n",
                      "latency must be in");
    expect_line_error("kernel k\nvalu 4 0\nendkernel\napp a = k\n",
                      "count must be >= 1");
    expect_line_error("kernel k\nsalu 0\nendkernel\napp a = k\n",
                      "count must be >= 1");
    expect_line_error("kernel k\nregion r 1M\n"
                      "load r strided 0\nwaitcnt 0\nendkernel\n"
                      "app a = k\n",
                      "stride must be in");
    expect_line_error("kernel k\nvalu 4 1\nwaitcnt 70000\nendkernel\n"
                      "app a = k\n",
                      "waitcnt bound");

    // Duplicate definitions.
    expect_line_error("kernel k\nvalu 4 1\nendkernel\n"
                      "kernel k\nvalu 4 1\nendkernel\napp a = k\n",
                      "duplicate kernel");
    expect_line_error("kernel k\nvalu 4 1\nendkernel\n"
                      "app a = k\napp b = k\n",
                      "duplicate app");

    // Unknown statements.
    expect_line_error("kernel k\nfrobnicate 1\nendkernel\napp a = k\n",
                      "unknown statement");
}

TEST(KernelParser, DiagnosticNamesTheOffendingLine)
{
    const auto result = parseApplication(
        "kernel k\nvalu 4 1\ngrid 0\nendkernel\napp a = k\n");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error.rfind("line 3:", 0), 0u) << result.error;
}

TEST(Workloads, LoadWorkloadResolvesNamesAndReportsErrors)
{
    const auto p = smallParams();

    const auto builtin = loadWorkload("comd", p);
    ASSERT_TRUE(builtin.ok()) << builtin.error;
    EXPECT_EQ(builtin.app->name, "comd");

    const auto missing_file = loadWorkload("/nonexistent/app.k", p);
    EXPECT_FALSE(missing_file.ok());
    EXPECT_NE(missing_file.error.find("/nonexistent/app.k"),
              std::string::npos)
        << missing_file.error;

    const auto unknown = loadWorkload("nonexistent", p);
    EXPECT_FALSE(unknown.ok());
    EXPECT_NE(unknown.error.find("unknown workload"),
              std::string::npos)
        << unknown.error;
}
