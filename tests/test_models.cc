/** @file Unit tests for src/models: estimation models & estimators. */

#include <gtest/gtest.h>

#include "models/estimation.hh"
#include "models/history_controller.hh"
#include "models/wave_estimator.hh"

using namespace pcstall;
using namespace pcstall::models;

namespace
{

gpu::CuEpochRecord
recordWith(Tick load_stall, Tick lead, Tick mem_interval, Tick overlap,
           Tick store_stall, std::uint64_t committed = 1000,
           Freq freq = 1'700 * freqMHz)
{
    gpu::CuEpochRecord r;
    r.loadStall = load_stall;
    r.leadLoad = lead;
    r.memInterval = mem_interval;
    r.overlap = overlap;
    r.storeStall = store_stall;
    r.committed = committed;
    r.freq = freq;
    return r;
}

} // namespace

TEST(Estimation, AsyncTimePerModel)
{
    const auto r = recordWith(100, 200, 600, 300, 50);
    EXPECT_EQ(cuAsyncTime(EstimationKind::Stall, r, tickUs), 100);
    EXPECT_EQ(cuAsyncTime(EstimationKind::Lead, r, tickUs), 200);
    EXPECT_EQ(cuAsyncTime(EstimationKind::Crit, r, tickUs), 600);
    // CRISP: memInterval - overlap + storeStall = 350, floor 150.
    EXPECT_EQ(cuAsyncTime(EstimationKind::Crisp, r, tickUs), 350);
}

TEST(Estimation, CrispFloorsAtObservedStalls)
{
    // Overlap credit larger than the interval: clamp to stall floor.
    const auto r = recordWith(400, 0, 500, 600, 100);
    EXPECT_EQ(cuAsyncTime(EstimationKind::Crisp, r, tickUs), 500);
}

TEST(Estimation, AsyncClampedToEpoch)
{
    const auto r = recordWith(0, 0, 5 * tickUs, 0, 0);
    EXPECT_EQ(cuAsyncTime(EstimationKind::Crit, r, tickUs), tickUs);
}

TEST(Estimation, FullyComputeScalesLinearly)
{
    // No async time: I(f2) = I1 * f2/f1.
    const auto r = recordWith(0, 0, 0, 0, 0, 1700);
    const double at_22 = cuInstrAt(EstimationKind::Stall, r, tickUs,
                                   2'200 * freqMHz);
    EXPECT_NEAR(at_22, 1700.0 * 2.2 / 1.7, 1.0);
    const double at_13 = cuInstrAt(EstimationKind::Stall, r, tickUs,
                                   1'300 * freqMHz);
    EXPECT_NEAR(at_13, 1700.0 * 1.3 / 1.7, 1.0);
}

TEST(Estimation, FullyMemoryBoundIsFlat)
{
    const auto r = recordWith(tickUs, 0, tickUs, 0, 0, 500);
    const double at_22 = cuInstrAt(EstimationKind::Stall, r, tickUs,
                                   2'200 * freqMHz);
    EXPECT_NEAR(at_22, 500.0, 1e-6);
}

TEST(Estimation, SameFrequencyIsIdentity)
{
    const auto r = recordWith(300, 100, 400, 100, 20, 1234);
    for (const auto kind : {EstimationKind::Stall, EstimationKind::Lead,
                            EstimationKind::Crit,
                            EstimationKind::Crisp}) {
        EXPECT_NEAR(cuInstrAt(kind, r, tickUs, 1'700 * freqMHz), 1234.0,
                    1e-9);
    }
}

TEST(Estimation, MonotoneInFrequency)
{
    const auto r = recordWith(300, 100, 400, 100, 20, 1000);
    double prev = 0.0;
    for (int mhz = 1300; mhz <= 2200; mhz += 100) {
        const double v = cuInstrAt(EstimationKind::Crisp, r, tickUs,
                                   static_cast<Freq>(mhz) * freqMHz);
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(Estimation, ZeroCommittedPredictsZero)
{
    const auto r = recordWith(0, 0, 0, 0, 0, 0);
    EXPECT_DOUBLE_EQ(cuInstrAt(EstimationKind::Stall, r, tickUs,
                               2'200 * freqMHz), 0.0);
}

TEST(Estimation, Names)
{
    EXPECT_STREQ(estimationKindName(EstimationKind::Stall), "STALL");
    EXPECT_STREQ(estimationKindName(EstimationKind::Crisp), "CRISP");
}

namespace
{

gpu::WaveEpochRecord
waveWith(std::uint64_t committed, Tick stall, std::uint32_t age = 0)
{
    gpu::WaveEpochRecord w;
    w.committed = committed;
    w.memStall = stall;
    w.ageRank = age;
    w.active = true;
    return w;
}

} // namespace

TEST(WaveEstimator, SensitivityMatchesStallModelDerivative)
{
    // S = I * T_core / (T * f_GHz): 100 instr, half the epoch stalled
    // at 2.0 GHz -> 100 * 0.5 / 2.0 = 25 instr/GHz.
    WaveEstimatorConfig cfg;
    cfg.normalizeAge = false;
    const double s = waveSensitivity(waveWith(100, tickUs / 2), cfg,
                                     tickUs, 2'000 * freqMHz);
    EXPECT_NEAR(s, 25.0, 1e-9);
}

TEST(WaveEstimator, FullyStalledWaveHasZeroSensitivity)
{
    WaveEstimatorConfig cfg;
    const double s = waveSensitivity(waveWith(10, tickUs), cfg, tickUs,
                                     1'700 * freqMHz);
    EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(WaveEstimator, BarrierTimeCountsAsAsync)
{
    WaveEstimatorConfig cfg;
    gpu::WaveEpochRecord w = waveWith(100, 0);
    w.barrierStall = tickUs / 2;
    const double with_barrier = waveSensitivity(w, cfg, tickUs,
                                                2'000 * freqMHz);
    cfg.barrierWeight = 0.0;
    const double without = waveSensitivity(w, cfg, tickUs,
                                           2'000 * freqMHz);
    EXPECT_LT(with_barrier, without);
}

TEST(WaveEstimator, ContentionFactorDecreasesWithAge)
{
    WaveEstimatorConfig cfg;
    EXPECT_DOUBLE_EQ(contentionFactor(cfg, 0), 1.0);
    EXPECT_LT(contentionFactor(cfg, 39), 1.0);
    EXPECT_GT(contentionFactor(cfg, 10), contentionFactor(cfg, 30));
    // Clamped at the bottom and saturating beyond the slot count.
    EXPECT_DOUBLE_EQ(contentionFactor(cfg, 39),
                     contentionFactor(cfg, 100));
}

TEST(WaveEstimator, NormalizationDisabled)
{
    WaveEstimatorConfig cfg;
    cfg.normalizeAge = false;
    EXPECT_DOUBLE_EQ(contentionFactor(cfg, 35), 1.0);
}

TEST(WaveEstimator, NormalizedBoostsYoungWaves)
{
    WaveEstimatorConfig cfg;
    const auto young = waveWith(100, 0, 35);
    const auto old = waveWith(100, 0, 0);
    const double sn_young = normalizedWaveSensitivity(young, cfg, tickUs,
                                                      2'000 * freqMHz);
    const double sn_old = normalizedWaveSensitivity(old, cfg, tickUs,
                                                    2'000 * freqMHz);
    // Same observed throughput while suffering more contention =>
    // higher intrinsic sensitivity.
    EXPECT_GT(sn_young, sn_old);
}

/** Property sweep: sensitivity is monotone in core-time fraction. */
class WaveSensitivitySweep
    : public ::testing::TestWithParam<int>
{};

TEST_P(WaveSensitivitySweep, MonotoneInCoreTime)
{
    WaveEstimatorConfig cfg;
    const int pct = GetParam();
    const Tick stall_more = tickUs * pct / 100;
    const Tick stall_less = tickUs * std::max(pct - 10, 0) / 100;
    const double s_more = waveSensitivity(waveWith(100, stall_more), cfg,
                                          tickUs, 1'700 * freqMHz);
    const double s_less = waveSensitivity(waveWith(100, stall_less), cfg,
                                          tickUs, 1'700 * freqMHz);
    EXPECT_LE(s_more, s_less);
}

INSTANTIATE_TEST_SUITE_P(StallFractions, WaveSensitivitySweep,
                         ::testing::Values(10, 30, 50, 70, 90, 100));

TEST(WaveEstimator, LevelPlusSlopeReconstructsCommitted)
{
    // I(f1) = I0 + S * f1 exactly (the linearization is anchored at
    // the measured point).
    WaveEstimatorConfig cfg;
    const auto w = waveWith(140, tickUs / 3);
    const Freq f1 = 1'800 * freqMHz;
    const double s = waveSensitivity(w, cfg, tickUs, f1);
    const double i0 = waveLevel(w, cfg, tickUs, f1);
    EXPECT_NEAR(i0 + s * freqGHzD(f1), 140.0, 1e-9);
}

TEST(WaveEstimator, FullyComputeLevelIsZero)
{
    WaveEstimatorConfig cfg;
    const auto w = waveWith(200, 0);
    EXPECT_NEAR(waveLevel(w, cfg, tickUs, 2'000 * freqMHz), 0.0, 1e-9);
}

TEST(WaveEstimator, FullyStalledLevelEqualsCommitted)
{
    WaveEstimatorConfig cfg;
    const auto w = waveWith(50, tickUs);
    EXPECT_NEAR(waveLevel(w, cfg, tickUs, 2'000 * freqMHz), 50.0, 1e-9);
}

TEST(WaveEstimator, LevelNeverNegative)
{
    WaveEstimatorConfig cfg;
    for (int stall_pct : {0, 20, 50, 90, 100}) {
        const auto w = waveWith(123, tickUs * stall_pct / 100);
        EXPECT_GE(waveLevel(w, cfg, tickUs, 1'300 * freqMHz), 0.0);
    }
}

TEST(HistoryController, PredictsRepeatingPattern)
{
    // Alternate two distinct phases; after warm-up the GPHT should
    // hit its pattern table and predict the *other* phase.
    const power::VfTable table = power::VfTable::paperTable();
    const power::PowerModel pm;
    const dvfs::DomainMap domains(1, 1);

    auto make_record = [&](bool compute) {
        gpu::EpochRecord rec;
        rec.start = 0;
        rec.end = tickUs;
        rec.cus.resize(1);
        rec.cus[0].committed = compute ? 4000 : 600;
        rec.cus[0].freq = 1'700 * freqMHz;
        gpu::WaveEpochRecord w;
        w.cu = 0;
        w.slot = 0;
        w.committed = compute ? 4000 : 600;
        w.memStall = compute ? 0 : tickUs * 9 / 10;
        w.active = true;
        rec.waves.push_back(w);
        return rec;
    };

    HistoryConfig cfg;
    cfg.historyLength = 2;
    HistoryController c(cfg, 1);
    std::vector<gpu::WaveSnapshot> snaps;

    // Drive A,B,A,B,... for several rounds.
    std::vector<dvfs::DomainDecision> last;
    for (int i = 0; i < 20; ++i) {
        const auto rec = make_record(i % 2 == 0);
        dvfs::EpochContext ctx{rec, snaps, domains, table, pm, tickUs,
                               45.0, dvfs::Objective::Ed2p, 0.05, 4,
                               nullptr, nullptr};
        last = c.decide(ctx);
    }
    EXPECT_GT(c.tableHitRatio(), 0.5);
    // After a compute epoch (i=19 ended with memory? i even = compute;
    // last processed i=19 -> memory elapsed), the pattern predicts a
    // compute phase next: the chosen state should be high.
    EXPECT_GE(last[0].state, 5u);
}

TEST(HistoryController, FallsBackToLastValueWhenCold)
{
    const power::VfTable table = power::VfTable::paperTable();
    const power::PowerModel pm;
    const dvfs::DomainMap domains(1, 1);
    gpu::EpochRecord rec;
    rec.start = 0;
    rec.end = tickUs;
    rec.cus.resize(1);
    rec.cus[0].committed = 500;
    rec.cus[0].freq = 1'700 * freqMHz;
    gpu::WaveEpochRecord w;
    w.cu = 0;
    w.committed = 500;
    w.memStall = tickUs;
    w.active = true;
    rec.waves.push_back(w);
    std::vector<gpu::WaveSnapshot> snaps;
    dvfs::EpochContext ctx{rec, snaps, domains, table, pm, tickUs,
                           45.0, dvfs::Objective::Ed2p, 0.05, 4,
                           nullptr, nullptr};
    HistoryController c(HistoryConfig{}, 1);
    const auto d = c.decide(ctx);
    ASSERT_EQ(d.size(), 1u);
    // Memory phase, cold table: parks low via the last-value model.
    EXPECT_LE(d[0].state, 2u);
}
