/** @file Unit tests for src/power: V/f table, power & thermal models. */

#include <gtest/gtest.h>

#include "power/power_model.hh"
#include "power/vf_table.hh"

using namespace pcstall;
using namespace pcstall::power;

TEST(VfTable, PaperTableHasTenStates)
{
    const VfTable t = VfTable::paperTable();
    ASSERT_EQ(t.numStates(), 10u);
    EXPECT_EQ(t.lowest().freq, 1'300 * freqMHz);
    EXPECT_EQ(t.highest().freq, 2'200 * freqMHz);
    for (std::size_t i = 1; i < t.numStates(); ++i) {
        EXPECT_EQ(t.state(i).freq - t.state(i - 1).freq, 100 * freqMHz);
        EXPECT_GT(t.state(i).voltage, t.state(i - 1).voltage);
    }
}

TEST(VfTable, VoltageCurveIsSuperlinear)
{
    const VfTable t = VfTable::paperTable();
    // Voltage steps grow toward the top of the range.
    const double low_step = t.state(1).voltage - t.state(0).voltage;
    const double high_step =
        t.state(9).voltage - t.state(8).voltage;
    EXPECT_GT(high_step, low_step);
}

TEST(VfTable, IndexLookups)
{
    const VfTable t = VfTable::paperTable();
    EXPECT_EQ(t.indexOf(1'700 * freqMHz), 4);
    EXPECT_EQ(t.indexOf(999 * freqMHz), -1);
    EXPECT_EQ(t.nearestIndex(1'740 * freqMHz), 4u);
    EXPECT_EQ(t.nearestIndex(10 * freqMHz), 0u);
    EXPECT_EQ(t.nearestIndex(9'999 * freqMHz), 9u);
}

TEST(VfTable, VoltageInterpolation)
{
    const VfTable t = VfTable::paperTable();
    const Volts mid = t.voltageAt(1'350 * freqMHz);
    EXPECT_GT(mid, t.state(0).voltage);
    EXPECT_LT(mid, t.state(1).voltage);
    EXPECT_DOUBLE_EQ(t.voltageAt(500 * freqMHz), t.state(0).voltage);
    EXPECT_DOUBLE_EQ(t.voltageAt(9'000 * freqMHz), t.state(9).voltage);
}

TEST(VfTable, WideTableCoversFigure5Range)
{
    const VfTable t = VfTable::wideTable();
    EXPECT_EQ(t.lowest().freq, 1'000 * freqMHz);
    EXPECT_EQ(t.highest().freq, 3'000 * freqMHz);
}

namespace
{

memory::MemActivity
someActivity()
{
    memory::MemActivity a;
    a.l1Hits = 500;
    a.l1Misses = 100;
    a.l2Hits = 60;
    a.l2Misses = 40;
    a.stores = 80;
    return a;
}

} // namespace

TEST(PowerModel, EnergyGrowsWithVoltageAndFrequency)
{
    const PowerModel pm;
    const VfTable t = VfTable::paperTable();
    const auto low = pm.cuEpochEnergy(t.state(0).voltage, t.state(0).freq,
                                      1000, someActivity(), tickUs, 45.0);
    const auto high = pm.cuEpochEnergy(t.state(9).voltage,
                                       t.state(9).freq, 1000,
                                       someActivity(), tickUs, 45.0);
    EXPECT_GT(high.total(), low.total());
    EXPECT_GT(high.dynamic, low.dynamic);
}

TEST(PowerModel, EnergyGrowsWithWork)
{
    const PowerModel pm;
    const VfTable t = VfTable::paperTable();
    const auto idle = pm.cuEpochEnergy(t.state(4).voltage,
                                       t.state(4).freq, 0,
                                       memory::MemActivity{}, tickUs,
                                       45.0);
    const auto busy = pm.cuEpochEnergy(t.state(4).voltage,
                                       t.state(4).freq, 2000,
                                       someActivity(), tickUs, 45.0);
    EXPECT_GT(busy.dynamic, idle.dynamic);
    EXPECT_DOUBLE_EQ(busy.leakage, idle.leakage);
}

TEST(PowerModel, LeakageRisesWithTemperature)
{
    const PowerModel pm;
    EXPECT_GT(pm.cuLeakage(0.9, 85.0), pm.cuLeakage(0.9, 45.0));
    EXPECT_GT(pm.cuLeakage(1.1, 45.0), pm.cuLeakage(0.7, 45.0));
}

TEST(PowerModel, IvrEfficiencyPeaksNearOptimum)
{
    const PowerModel pm;
    const double at_opt = pm.ivrEfficiency(pm.params().etaVopt);
    EXPECT_GT(at_opt, pm.ivrEfficiency(0.70));
    EXPECT_GT(at_opt, pm.ivrEfficiency(1.10));
    EXPECT_LE(at_opt, 0.98);
    EXPECT_GE(pm.ivrEfficiency(0.0), 0.5);
}

TEST(PowerModel, IvrLossIsPositive)
{
    const PowerModel pm;
    const auto e = pm.cuEpochEnergy(0.9, 1'700 * freqMHz, 1000,
                                    someActivity(), tickUs, 45.0);
    EXPECT_GT(e.ivrLoss, 0.0);
}

TEST(PowerModel, MemEnergyScalesWithTraffic)
{
    const PowerModel pm;
    const Joules idle = pm.memEpochEnergy(memory::MemActivity{}, tickUs);
    const Joules busy = pm.memEpochEnergy(someActivity(), tickUs);
    EXPECT_GT(busy, idle);
    EXPECT_GT(idle, 0.0); // static power
}

TEST(PowerModel, PlausibleChipPower)
{
    // 64 CUs at nominal, fully busy (~1.7e9 instr/s each): total chip
    // power should land in a Vega-class 100-400 W envelope.
    const PowerModel pm;
    const VfTable t = VfTable::paperTable();
    const VfState &nominal = t.state(4);
    memory::MemActivity act;
    act.l1Hits = 600;
    act.l1Misses = 60;
    act.l2Hits = 40;
    act.l2Misses = 20;
    act.stores = 50;
    const std::uint64_t instr = 1700; // per us at IPC 1
    const auto cu = pm.cuEpochEnergy(nominal.voltage, nominal.freq,
                                     instr, act, tickUs, 55.0);
    memory::MemActivity total;
    for (int i = 0; i < 64; ++i)
        total += act;
    const Joules mem = pm.memEpochEnergy(total, tickUs);
    const Watts chip = (64.0 * cu.total() + mem) / 1e-6;
    EXPECT_GT(chip, 100.0);
    EXPECT_LT(chip, 400.0);
}

TEST(ThermalModel, ApproachesSteadyState)
{
    ThermalModel tm(45.0, 0.15, 50.0);
    // 200 W for a long time: steady state = 45 + 200*0.15 = 75 C.
    for (int i = 0; i < 100000; ++i)
        tm.update(200.0, 1e-2);
    EXPECT_NEAR(tm.temperature(), 75.0, 0.5);
}

TEST(ThermalModel, BarelyMovesAtMicrosecondScale)
{
    ThermalModel tm;
    for (int i = 0; i < 100; ++i)
        tm.update(250.0, 1e-6);
    EXPECT_NEAR(tm.temperature(), 45.0, 0.1);
}

TEST(PowerModel, TransitionEnergyProperties)
{
    const PowerModel pm;
    // No transition, no cost.
    EXPECT_DOUBLE_EQ(pm.transitionEnergy(0.9, 0.9), 0.0);
    // Symmetric in direction and growing with the voltage step.
    const Joules small = pm.transitionEnergy(0.85, 0.90);
    const Joules big = pm.transitionEnergy(0.75, 1.05);
    EXPECT_DOUBLE_EQ(small, pm.transitionEnergy(0.90, 0.85));
    EXPECT_GT(big, small);
    EXPECT_GT(small, 0.0);
    // Orders of magnitude: nanojoules, far below epoch energies.
    EXPECT_LT(big, 1e-6);
}
