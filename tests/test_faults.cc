/** @file Unit tests for src/faults and the graceful-degradation path. */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/pcstall_controller.hh"
#include "dvfs/controller.hh"
#include "faults/fault_injector.hh"
#include "isa/kernel_builder.hh"
#include "predict/pc_table.hh"
#include "sim/experiment.hh"

using namespace pcstall;
using namespace pcstall::faults;

namespace
{

gpu::EpochRecord
sampleRecord(std::size_t num_cus = 2, std::size_t waves_per_cu = 4)
{
    gpu::EpochRecord r;
    r.start = 0;
    r.end = tickUs;
    r.cus.resize(num_cus);
    for (std::size_t c = 0; c < num_cus; ++c) {
        auto &cu = r.cus[c];
        cu.committed = 4000 + 100 * c;
        cu.vmemLoads = 300;
        cu.vmemStores = 120;
        cu.busy = tickUs / 2;
        cu.loadStall = tickUs / 4;
        cu.storeStall = tickUs / 8;
        cu.leadLoad = tickUs / 8;
        cu.memInterval = tickUs / 3;
        cu.overlap = tickUs / 6;
        cu.freq = 1'700 * freqMHz;
        for (std::size_t s = 0; s < waves_per_cu; ++s) {
            gpu::WaveEpochRecord w;
            w.cu = static_cast<std::uint32_t>(c);
            w.slot = static_cast<std::uint32_t>(s);
            w.startPcAddr = 0x1000 + 16 * s;
            w.committed = 900 + 10 * s;
            w.memStall = tickUs / 4;
            w.barrierStall = tickUs / 16;
            w.active = true;
            r.waves.push_back(w);
        }
    }
    return r;
}

bool
sameRecord(const gpu::EpochRecord &a, const gpu::EpochRecord &b)
{
    if (a.cus.size() != b.cus.size() || a.waves.size() != b.waves.size())
        return false;
    for (std::size_t i = 0; i < a.cus.size(); ++i) {
        const auto &x = a.cus[i];
        const auto &y = b.cus[i];
        if (x.committed != y.committed || x.vmemLoads != y.vmemLoads ||
            x.vmemStores != y.vmemStores || x.busy != y.busy ||
            x.loadStall != y.loadStall || x.storeStall != y.storeStall ||
            x.leadLoad != y.leadLoad || x.memInterval != y.memInterval ||
            x.overlap != y.overlap) {
            return false;
        }
    }
    for (std::size_t i = 0; i < a.waves.size(); ++i) {
        const auto &x = a.waves[i];
        const auto &y = b.waves[i];
        if (x.committed != y.committed || x.memStall != y.memStall ||
            x.barrierStall != y.barrierStall) {
            return false;
        }
    }
    return true;
}

std::shared_ptr<const isa::Application>
loopApp()
{
    isa::KernelBuilder b("mix");
    const auto r = b.region("data", 32 << 20);
    b.grid(16, 4);
    b.loop(400);
    b.load(r, isa::AccessPattern::Random);
    b.waitcnt(0);
    b.valu(4, 4);
    b.endLoop();
    auto app = std::make_shared<isa::Application>();
    app->name = "mix_app";
    app->launches.push_back(b.build());
    app->assignCodeBases();
    return app;
}

sim::RunConfig
smallConfig()
{
    sim::RunConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.gpu.waveSlotsPerCu = 8;
    cfg.maxSimTime = 2 * tickMs;
    cfg.scaled();
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// FaultInjector basics.
// ---------------------------------------------------------------------

TEST(FaultInjector, DisabledInjectorIsIdentity)
{
    FaultInjector inj{FaultConfig{}};
    EXPECT_FALSE(inj.active());

    gpu::EpochRecord record = sampleRecord();
    const gpu::EpochRecord before = record;
    const auto out = inj.perturbRecord(record, tickUs);
    EXPECT_TRUE(sameRecord(before, record));
    EXPECT_EQ(out.perturbed, 0u);
    EXPECT_EQ(out.dropouts, 0u);

    const auto table = power::VfTable::paperTable();
    const auto t = inj.transition(2, 7, table);
    EXPECT_EQ(t.state, 7u);
    EXPECT_EQ(t.extraLatency, 0);
    EXPECT_FALSE(t.failed);

    predict::PcSensitivityTable pc{predict::PcTableConfig{}};
    EXPECT_EQ(inj.corrupt(pc), 0u);

    const auto sum = inj.totals();
    EXPECT_EQ(sum.telemetryPerturbations, 0u);
    EXPECT_EQ(sum.transitionFailures, 0u);
    EXPECT_EQ(sum.tableBitFlips, 0u);
}

TEST(FaultInjector, SameSeedDrawsSameFaults)
{
    FaultConfig cfg;
    cfg.telemetry.enabled = true;
    cfg.telemetry.sigma = 0.2;
    cfg.telemetry.dropoutProb = 0.05;

    FaultInjector a(cfg), b(cfg);
    gpu::EpochRecord ra = sampleRecord();
    gpu::EpochRecord rb = sampleRecord();
    a.perturbRecord(ra, tickUs);
    b.perturbRecord(rb, tickUs);
    EXPECT_TRUE(sameRecord(ra, rb));

    cfg.seed ^= 0x1234;
    FaultInjector c(cfg);
    gpu::EpochRecord rc = sampleRecord();
    c.perturbRecord(rc, tickUs);
    EXPECT_FALSE(sameRecord(ra, rc));
}

TEST(FaultInjector, PerturbedCountersStayInPhysicalRange)
{
    FaultConfig cfg;
    cfg.telemetry.enabled = true;
    cfg.telemetry.sigma = 3.0; // absurd noise to stress the clamps
    FaultInjector inj(cfg);

    for (int i = 0; i < 50; ++i) {
        gpu::EpochRecord r = sampleRecord();
        inj.perturbRecord(r, tickUs);
        for (const auto &cu : r.cus) {
            EXPECT_LE(cu.busy, tickUs);
            EXPECT_LE(cu.loadStall, tickUs);
            EXPECT_LE(cu.storeStall, tickUs);
            EXPECT_LE(cu.leadLoad, tickUs);
            EXPECT_LE(cu.memInterval, tickUs);
            EXPECT_LE(cu.overlap, tickUs);
            EXPECT_GE(cu.busy, 0);
            EXPECT_GE(cu.loadStall, 0);
        }
        for (const auto &w : r.waves) {
            EXPECT_LE(w.memStall, tickUs);
            EXPECT_LE(w.barrierStall, tickUs);
            EXPECT_GE(w.memStall, 0);
        }
    }
    EXPECT_GT(inj.totals().telemetryPerturbations, 0u);
}

TEST(FaultInjector, FullDropoutZeroesEveryCounter)
{
    FaultConfig cfg;
    cfg.telemetry.enabled = true;
    cfg.telemetry.dropoutProb = 1.0;
    FaultInjector inj(cfg);

    gpu::EpochRecord r = sampleRecord();
    const auto out = inj.perturbRecord(r, tickUs);
    for (const auto &cu : r.cus) {
        EXPECT_EQ(cu.committed, 0u);
        EXPECT_EQ(cu.busy, 0);
        EXPECT_EQ(cu.memInterval, 0);
    }
    for (const auto &w : r.waves)
        EXPECT_EQ(w.committed, 0u);
    EXPECT_GT(out.dropouts, 0u);
}

TEST(FaultInjector, TransitionAlwaysFailsAtProbabilityOne)
{
    FaultConfig cfg;
    cfg.dvfs.enabled = true;
    cfg.dvfs.transitionFailProb = 1.0;
    FaultInjector inj(cfg);
    const auto table = power::VfTable::paperTable();

    for (std::size_t req = 0; req < table.numStates(); ++req) {
        const auto out = inj.transition(3, req, table);
        if (req == 3)
            EXPECT_FALSE(out.failed); // no change requested
        else
            EXPECT_TRUE(out.failed);
        EXPECT_EQ(out.state, 3u); // stuck at the old state either way
    }
    EXPECT_EQ(inj.totals().transitionFailures, table.numStates() - 1);
}

TEST(FaultInjector, TransitionChargesExtraLatency)
{
    FaultConfig cfg;
    cfg.dvfs.enabled = true;
    cfg.dvfs.extraSwitchLatency = 5 * tickUs;
    FaultInjector inj(cfg);
    const auto table = power::VfTable::paperTable();

    const auto out = inj.transition(0, 4, table);
    EXPECT_EQ(out.state, 4u);
    EXPECT_FALSE(out.failed);
    EXPECT_EQ(out.extraLatency, 5 * tickUs);
    // Staying put costs nothing.
    EXPECT_EQ(inj.transition(4, 4, table).extraLatency, 0);
}

TEST(FaultInjector, QuantizedTransitionsStayLegal)
{
    FaultConfig cfg;
    cfg.dvfs.enabled = true;
    cfg.dvfs.granularity = 200 * freqMHz;
    FaultInjector inj(cfg);
    const auto table = power::VfTable::paperTable();

    for (std::size_t req = 0; req < table.numStates() + 3; ++req) {
        const auto out = inj.transition(0, req, table);
        EXPECT_LT(out.state, table.numStates());
    }
}

TEST(FaultInjector, OutOfRangeRequestIsClamped)
{
    FaultInjector inj{FaultConfig{}};
    const auto table = power::VfTable::paperTable();
    const auto out = inj.transition(0, table.numStates() + 50, table);
    EXPECT_EQ(out.state, table.numStates() - 1);
}

// ---------------------------------------------------------------------
// PC-table storage faults and the parity scrub.
// ---------------------------------------------------------------------

TEST(PcTableFaults, BitFlipPerturbsUnprotectedEntry)
{
    predict::PcTableConfig cfg;
    predict::PcSensitivityTable table(cfg);
    table.update(0x1000, 8.0, 32.0);
    const auto before = table.lookup(0x1000);
    ASSERT_TRUE(before.has_value());

    EXPECT_TRUE(table.injectBitFlip((0x1000 >> cfg.offsetBits) %
                                        cfg.entries,
                                    false, 7));
    const auto after = table.lookup(0x1000);
    ASSERT_TRUE(after.has_value()); // no parity: silently wrong
    EXPECT_NE(after->sensitivity, before->sensitivity);
    EXPECT_EQ(table.scrubCount(), 0u);
}

TEST(PcTableFaults, ParityScrubTurnsFlipIntoMiss)
{
    predict::PcTableConfig cfg;
    cfg.parityProtected = true;
    predict::PcSensitivityTable table(cfg);
    table.update(0x1000, 8.0, 32.0);
    ASSERT_TRUE(table.lookup(0x1000).has_value());

    const std::size_t idx = (0x1000 >> cfg.offsetBits) % cfg.entries;
    EXPECT_TRUE(table.injectBitFlip(idx, false, 3));
    EXPECT_FALSE(table.lookup(0x1000).has_value());
    EXPECT_EQ(table.scrubCount(), 1u);
    EXPECT_FALSE(table.entryValid(idx)); // scrub invalidates

    // A fresh update heals the entry.
    table.update(0x1000, 8.0, 32.0);
    EXPECT_TRUE(table.lookup(0x1000).has_value());
    EXPECT_EQ(table.scrubCount(), 1u);
}

TEST(PcTableFaults, FlipOnInvalidEntryIsRejected)
{
    predict::PcSensitivityTable table{predict::PcTableConfig{}};
    EXPECT_FALSE(table.injectBitFlip(0, false, 0));

    predict::PcTableConfig no_level;
    no_level.storeLevel = false;
    predict::PcSensitivityTable slope_only(no_level);
    slope_only.update(0x0, 4.0);
    EXPECT_FALSE(slope_only.injectBitFlip(0, true, 0));
    EXPECT_TRUE(slope_only.injectBitFlip(0, false, 0));
}

// ---------------------------------------------------------------------
// Decision sanitizer.
// ---------------------------------------------------------------------

TEST(SanitizeDecisions, LegalDecisionsPassUntouched)
{
    const auto table = power::VfTable::paperTable();
    std::vector<dvfs::DomainDecision> d = {{2, 100.0}, {5, 50.0}};
    const auto copy = d;
    EXPECT_EQ(dvfs::sanitizeDecisions(d, table, 2, 4), 0u);
    ASSERT_EQ(d.size(), copy.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
        EXPECT_EQ(d[i].state, copy[i].state);
        EXPECT_EQ(d[i].predictedInstr, copy[i].predictedInstr);
    }
}

TEST(SanitizeDecisions, RepairsCountStateAndNonFinite)
{
    const auto table = power::VfTable::paperTable();

    std::vector<dvfs::DomainDecision> wrong_count = {{2, 1.0}};
    EXPECT_GE(dvfs::sanitizeDecisions(wrong_count, table, 3, 4), 1u);
    ASSERT_EQ(wrong_count.size(), 3u);
    EXPECT_EQ(wrong_count[2].state, 4u); // filled with the fallback

    std::vector<dvfs::DomainDecision> bad = {
        {200, 1.0},
        {1, std::nan("")},
    };
    EXPECT_EQ(dvfs::sanitizeDecisions(bad, table, 2, 4), 2u);
    EXPECT_EQ(bad[0].state, table.numStates() - 1);
    EXPECT_TRUE(std::isfinite(bad[1].predictedInstr));
}

// ---------------------------------------------------------------------
// PCSTALL divergence watchdog.
// ---------------------------------------------------------------------

namespace
{

/** Minimal live context around a caller-owned record. */
struct WatchCtx
{
    gpu::EpochRecord record = sampleRecord(1, 2);
    std::vector<gpu::WaveSnapshot> snaps;
    dvfs::DomainMap domains{1, 1};
    power::VfTable table = power::VfTable::paperTable();
    power::PowerModel pm{power::PowerParams{}};

    WatchCtx()
    {
        gpu::WaveSnapshot s;
        s.cu = 0;
        s.slot = 0;
        s.pcAddr = 0x1000;
        snaps.push_back(s);
    }

    dvfs::EpochContext ctx()
    {
        return dvfs::EpochContext{record, snaps, domains, table, pm,
                                  tickUs, 45.0, dvfs::Objective::Ed2p,
                                  0.05, 4, nullptr, nullptr};
    }
};

} // namespace

TEST(Watchdog, TripsOnImplausibleTelemetryAndRecovers)
{
    core::PcstallConfig cfg =
        core::PcstallConfig::forEpoch(tickUs, 8);
    cfg.watchdog.enabled = true;
    // The hand-built record is not self-consistent with the phase
    // model, so disarm the divergence signal and exercise the
    // telemetry-plausibility signal in isolation.
    cfg.watchdog.errorThreshold = 1e9;
    core::PcstallController c(cfg, 1);

    WatchCtx good;
    for (int i = 0; i < 4; ++i)
        c.decide(good.ctx());
    EXPECT_FALSE(c.inFallback());
    EXPECT_EQ(c.watchdogTrips(), 0u);

    // loadStall + storeStall above the epoch span is impossible for a
    // clean record: the watchdog must flag it and trip after
    // `tripAfter` consecutive occurrences.
    WatchCtx corrupt;
    corrupt.record.cus[0].loadStall = tickUs;
    corrupt.record.cus[0].storeStall = tickUs / 2;
    for (std::uint32_t i = 0; i < cfg.watchdog.tripAfter; ++i)
        c.decide(corrupt.ctx());
    EXPECT_TRUE(c.inFallback());
    EXPECT_EQ(c.watchdogTrips(), 1u);
    EXPECT_GT(c.fallbackEpochs(), 0u);

    // Hysteresis: recovery only after `recoverAfter` clean epochs.
    for (std::uint32_t i = 0; i + 1 < cfg.watchdog.recoverAfter; ++i) {
        c.decide(good.ctx());
        EXPECT_TRUE(c.inFallback());
    }
    c.decide(good.ctx());
    EXPECT_FALSE(c.inFallback());
}

TEST(Watchdog, DisabledWatchdogNeverTrips)
{
    core::PcstallConfig cfg =
        core::PcstallConfig::forEpoch(tickUs, 8);
    core::PcstallController c(cfg, 1);

    WatchCtx corrupt;
    corrupt.record.cus[0].loadStall = tickUs;
    corrupt.record.cus[0].storeStall = tickUs;
    for (int i = 0; i < 10; ++i)
        c.decide(corrupt.ctx());
    EXPECT_FALSE(c.inFallback());
    EXPECT_EQ(c.watchdogTrips(), 0u);
}

// ---------------------------------------------------------------------
// End-to-end graceful degradation.
// ---------------------------------------------------------------------

TEST(FaultEndToEnd, DisabledFaultSeedDoesNotChangeResults)
{
    // All fault classes default off: the injector must never draw from
    // its RNGs, so even the fault seed cannot influence the run.
    sim::RunConfig cfg_a = smallConfig();
    cfg_a.faults.seed = 0x1111;
    sim::RunConfig cfg_b = smallConfig();
    cfg_b.faults.seed = 0x2222;

    const auto app = loopApp();
    core::PcstallController ca(
        core::PcstallConfig::forEpoch(cfg_a.epochLen,
                                      cfg_a.gpu.waveSlotsPerCu),
        cfg_a.gpu.numCus);
    core::PcstallController cb(
        core::PcstallConfig::forEpoch(cfg_b.epochLen,
                                      cfg_b.gpu.waveSlotsPerCu),
        cfg_b.gpu.numCus);
    const auto ra = sim::ExperimentDriver(cfg_a).run(app, ca);
    const auto rb = sim::ExperimentDriver(cfg_b).run(app, cb);

    EXPECT_EQ(ra.execTime, rb.execTime);
    EXPECT_EQ(ra.instructions, rb.instructions);
    EXPECT_EQ(ra.transitions, rb.transitions);
    EXPECT_DOUBLE_EQ(ra.energy, rb.energy);
    EXPECT_DOUBLE_EQ(ra.predictionAccuracy, rb.predictionAccuracy);
    EXPECT_EQ(ra.faults.clampedDecisions, 0u);
    EXPECT_EQ(ra.faults.telemetryPerturbations, 0u);
}

TEST(FaultEndToEnd, HeavyNoiseRunStaysLegalAndFallsBack)
{
    sim::RunConfig cfg = smallConfig();
    cfg.collectTrace = true;
    cfg.watchdogFallback = true;
    cfg.eccProtectTables = true;
    cfg.faults.telemetry.enabled = true;
    cfg.faults.telemetry.sigma = 0.3;
    cfg.faults.telemetry.dropoutProb = 0.05;
    cfg.faults.dvfs.enabled = true;
    cfg.faults.dvfs.transitionFailProb = 0.2;
    cfg.faults.dvfs.extraSwitchLatency = tickUs / 2;
    cfg.faults.storage.enabled = true;
    cfg.faults.storage.upsetsPerEpoch = 1.0;

    core::PcstallConfig pcfg = core::PcstallConfig::forEpoch(
        cfg.epochLen, cfg.gpu.waveSlotsPerCu);
    pcfg.watchdog.enabled = true;
    pcfg.table.parityProtected = true;
    core::PcstallController controller(pcfg, cfg.gpu.numCus);

    sim::ExperimentDriver driver(cfg);
    const sim::RunResult r = driver.run(loopApp(), controller);

    EXPECT_TRUE(r.completed);
    ASSERT_FALSE(r.trace.empty());
    for (const auto &e : r.trace) {
        for (const std::uint8_t s : e.domainState)
            EXPECT_LT(s, driver.table().numStates());
    }
    EXPECT_GT(r.faults.telemetryPerturbations, 0u);
    EXPECT_GT(r.faults.transitionFailures, 0u);
    EXPECT_GT(r.faults.tableBitFlips, 0u);
    EXPECT_GT(r.faults.fallbackEpochs, 0u);
    EXPECT_GT(r.faults.watchdogTrips, 0u);
}

TEST(FaultEndToEnd, ValidateRunConfigRejectsBadFaultRanges)
{
    sim::RunConfig cfg = smallConfig();
    EXPECT_TRUE(sim::validateRunConfig(cfg).empty());

    cfg.faults.telemetry.dropoutProb = 1.5;
    EXPECT_FALSE(sim::validateRunConfig(cfg).empty());

    cfg = smallConfig();
    cfg.faults.dvfs.transitionFailProb = -0.1;
    EXPECT_FALSE(sim::validateRunConfig(cfg).empty());
}
