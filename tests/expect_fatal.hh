/**
 * @file
 * Test helper for the FatalError contract: fatal() throws a typed
 * exception (it no longer calls std::exit), so invalid-configuration
 * checks are ordinary EXPECT_THROW-style assertions instead of death
 * tests. EXPECT_FATAL additionally checks the diagnostic substring.
 */

#ifndef PCSTALL_TESTS_EXPECT_FATAL_HH
#define PCSTALL_TESTS_EXPECT_FATAL_HH

#include <string>

#include <gtest/gtest.h>

#include "common/logging.hh"

#define EXPECT_FATAL(statement, substr)                               \
    do {                                                              \
        bool thrown_ = false;                                         \
        try {                                                         \
            statement;                                                \
        } catch (const ::pcstall::FatalError &e_) {                   \
            thrown_ = true;                                           \
            EXPECT_NE(std::string(e_.what()).find(substr),            \
                      std::string::npos)                              \
                << "FatalError message \"" << e_.what()               \
                << "\" lacks \"" << substr << "\"";                   \
        }                                                             \
        EXPECT_TRUE(thrown_)                                          \
            << #statement " did not throw FatalError";                \
    } while (0)

#endif // PCSTALL_TESTS_EXPECT_FATAL_HH
