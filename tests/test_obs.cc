/**
 * @file
 * Tests of the observability subsystem: counter / gauge / histogram /
 * timer semantics, the disabled-path no-op guarantee, run-context
 * sharding and submission-order merging, the JSON / Prometheus /
 * Chrome-trace writers (with a golden-file check on a synthetic
 * 3-epoch run), the headline determinism property - a sweep's merged
 * metrics and timeline are byte-identical for every --threads value -
 * and the log-level / rate-limited-warn controls.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "obs/context.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/timeline.hh"
#include "sim/timeline_recorder.hh"
#include "sweep_runner.hh"

using namespace pcstall;

namespace
{

/** Every test starts and ends with pristine observability state. */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::resetAll(); }
    void TearDown() override { obs::resetAll(); }
};

// ---------------------------------------------------------------- //
// Counters, gauges, histograms, timers                              //
// ---------------------------------------------------------------- //

TEST_F(ObsTest, DisabledRecordingIsANoop)
{
    ASSERT_FALSE(obs::metricsEnabled());
    obs::Registry &registry = obs::reg();
    registry.counter("noop.counter").add(5);
    registry.gauge("noop.gauge").set(3.5);
    registry.histogram("noop.hist").record(1.0);
    EXPECT_EQ(obs::nowNsIfEnabled(), -1);
    {
        const obs::ScopedTimer t(&registry.histogram("noop.hist"));
    }
    const obs::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("noop.counter"), 0u);
    EXPECT_EQ(snap.gauges.at("noop.gauge"), 0.0);
    EXPECT_EQ(snap.histograms.at("noop.hist").count, 0u);
}

TEST_F(ObsTest, CounterAndGaugeRecordWhenEnabled)
{
    obs::setMetricsEnabled(true);
    obs::Registry &registry = obs::reg();
    registry.counter("c").add(2);
    registry.counter("c").add(3);
    registry.gauge("g").set(1.5);
    registry.gauge("g").set(2.5); // last write wins
    const obs::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("c"), 5u);
    EXPECT_EQ(snap.gauges.at("g"), 2.5);
}

TEST_F(ObsTest, RegistryHandlesAreStable)
{
    obs::Registry &registry = obs::reg();
    obs::Counter &a = registry.counter("stable");
    obs::Counter &b = registry.counter("stable");
    EXPECT_EQ(&a, &b);
}

TEST_F(ObsTest, HistogramStatsAndPercentiles)
{
    obs::setMetricsEnabled(true);
    obs::Histogram hist;
    double sum = 0.0;
    for (int v = 1; v <= 100; ++v) {
        hist.record(static_cast<double>(v));
        sum += static_cast<double>(v);
    }
    const obs::HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 100u);
    EXPECT_EQ(snap.sum, sum);
    EXPECT_EQ(snap.min, 1.0);
    EXPECT_EQ(snap.max, 100.0);
    // Log-scale buckets have <= 19% relative error; percentiles must
    // land near the exact answers and be ordered and clamped.
    EXPECT_NEAR(snap.percentile(0.50), 50.0, 50.0 * 0.2);
    EXPECT_LE(snap.percentile(0.50), snap.percentile(0.95));
    EXPECT_LE(snap.percentile(0.95), snap.percentile(0.99));
    EXPECT_GE(snap.percentile(0.0), snap.min);
    EXPECT_LE(snap.percentile(1.0), snap.max);
}

TEST_F(ObsTest, HistogramUnderflowAndOverflow)
{
    obs::setMetricsEnabled(true);
    obs::Histogram hist;
    hist.record(0.0);                 // underflow bucket
    hist.record(-3.0);                // negative: underflow bucket
    hist.record(std::ldexp(1.0, 60)); // beyond 2^48: overflow tail
    const obs::HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 3u);
    EXPECT_EQ(snap.overflow, 1u);
    EXPECT_EQ(snap.max, std::ldexp(1.0, 60));
    // The overflow tail reports the observed max, clamped.
    EXPECT_EQ(snap.percentile(0.999), snap.max);
}

TEST_F(ObsTest, HistogramSnapshotMergeAdds)
{
    obs::setMetricsEnabled(true);
    obs::Histogram a;
    obs::Histogram b;
    a.record(1.0);
    a.record(4.0);
    b.record(16.0);
    obs::HistogramSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.count, 3u);
    EXPECT_EQ(merged.sum, 21.0);
    EXPECT_EQ(merged.min, 1.0);
    EXPECT_EQ(merged.max, 16.0);
}

TEST_F(ObsTest, ScopedTimerRecordsWallTime)
{
    obs::setMetricsEnabled(true);
    obs::Registry &registry = obs::reg();
    obs::Histogram &hist =
        registry.histogram("t.hist", obs::MetricKind::Timing);
    obs::Counter &total =
        registry.counter("t.total_ns", obs::MetricKind::Timing);
    {
        const obs::ScopedTimer t(&hist, &total);
    }
    const obs::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.histograms.at("t.hist").count, 1u);
    EXPECT_GE(snap.histograms.at("t.hist").min, 0.0);
    EXPECT_EQ(snap.kindOf("t.hist"), obs::MetricKind::Timing);
    EXPECT_EQ(snap.kindOf("t.total_ns"), obs::MetricKind::Timing);
}

// ---------------------------------------------------------------- //
// Run contexts and deterministic merging                            //
// ---------------------------------------------------------------- //

TEST_F(ObsTest, ScopedContextRoutesRecording)
{
    obs::setMetricsEnabled(true);
    obs::RunContext shard("shard");
    {
        const obs::ScopedContext scope(shard);
        EXPECT_EQ(&obs::currentContext(), &shard);
        obs::reg().counter("routed").add(7);
    }
    // Restored: the default context never saw the recording.
    EXPECT_NE(&obs::currentContext(), &shard);
    EXPECT_EQ(shard.registry.snapshot().counters.at("routed"), 7u);
    const obs::MetricsSnapshot def = obs::reg().snapshot();
    EXPECT_EQ(def.counters.count("routed"), 0u);
}

TEST_F(ObsTest, CollectedSnapshotMergesShardsAndDefault)
{
    obs::setMetricsEnabled(true);
    obs::RunContext a("a");
    obs::RunContext b("b");
    {
        const obs::ScopedContext scope(a);
        obs::reg().counter("x").add(1);
        obs::reg().histogram("h").record(2.0);
    }
    {
        const obs::ScopedContext scope(b);
        obs::reg().counter("x").add(2);
        obs::reg().histogram("h").record(8.0);
    }
    obs::reg().counter("x").add(4); // default context
    obs::collectContext(a);
    obs::collectContext(b);
    const obs::MetricsSnapshot merged = obs::collectedSnapshot();
    EXPECT_EQ(merged.counters.at("x"), 7u);
    EXPECT_EQ(merged.histograms.at("h").count, 2u);
    EXPECT_EQ(merged.histograms.at("h").sum, 10.0);
}

// ---------------------------------------------------------------- //
// Exporters                                                         //
// ---------------------------------------------------------------- //

obs::MetricsSnapshot
writerFixture()
{
    obs::setMetricsEnabled(true);
    obs::Registry &registry = obs::reg();
    registry.counter("pc_table.hits").add(42);
    registry.gauge("run.accuracy").set(0.875);
    registry.histogram("predict.error_pct").record(3.0);
    registry.histogram("predict.error_pct").record(12.0);
    registry
        .counter("profile.simulate_ns", obs::MetricKind::Timing)
        .add(1'000'000);
    return registry.snapshot();
}

TEST_F(ObsTest, MetricsJsonSeparatesTimingSection)
{
    const obs::MetricsSnapshot snap = writerFixture();
    std::ostringstream os;
    obs::writeMetricsJson(os, snap, /*include_timing=*/true);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema\":\"pcstall-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"pc_table.hits\":42"), std::string::npos);
    EXPECT_NE(json.find("\"timing\""), std::string::npos);
    EXPECT_NE(json.find("\"profile.simulate_ns\":1000000"),
              std::string::npos);
    // The timing metric appears only after the "timing" key.
    EXPECT_GT(json.find("profile.simulate_ns"), json.find("\"timing\""));

    std::ostringstream os2;
    obs::writeMetricsJson(os2, snap, /*include_timing=*/false);
    EXPECT_EQ(os2.str().find("profile.simulate_ns"), std::string::npos);
    EXPECT_NE(os2.str().find("\"pc_table.hits\":42"),
              std::string::npos);
}

TEST_F(ObsTest, PrometheusExpositionFormat)
{
    const obs::MetricsSnapshot snap = writerFixture();
    std::ostringstream os;
    obs::writeMetricsPrometheus(os, snap);
    const std::string text = os.str();
    EXPECT_NE(text.find("# TYPE pcstall_pc_table_hits counter"),
              std::string::npos);
    EXPECT_NE(text.find("pcstall_pc_table_hits 42"), std::string::npos);
    EXPECT_NE(text.find("# TYPE pcstall_run_accuracy gauge"),
              std::string::npos);
    EXPECT_NE(
        text.find("# TYPE pcstall_predict_error_pct histogram"),
        std::string::npos);
    EXPECT_NE(text.find("pcstall_predict_error_pct_count 2"),
              std::string::npos);
    EXPECT_NE(text.find("pcstall_predict_error_pct_sum 15"),
              std::string::npos);
    EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 2"), std::string::npos);
}

// ---------------------------------------------------------------- //
// Timeline: golden file on a synthetic 3-epoch run                  //
// ---------------------------------------------------------------- //

/** Drive a TimelineRecorder through a hand-built 3-epoch, 2-domain
 *  run and return the Chrome-trace JSON document. */
std::string
syntheticTimelineJson()
{
    sim::RunConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.cusPerDomain = 1;

    std::vector<obs::TimelineEvent> events;
    sim::TimelineRecorder recorder(cfg, events);

    const std::vector<gpu::WaveSnapshot> no_snapshots;
    const std::vector<dvfs::DomainDecision> no_decisions;
    const std::vector<std::size_t> no_applied;

    const auto epoch = [&](Tick start, Freq d0_mhz, Freq d1_mhz,
                           std::uint64_t committed,
                           const dvfs::AccurateEstimates *sweep,
                           const gpu::FaultEpochCounters *faults) {
        gpu::EpochRecord record;
        record.start = start;
        record.end = start + tickUs;
        record.cus.resize(2);
        record.cus[0].freq = d0_mhz * freqMHz;
        record.cus[0].committed = committed;
        record.cus[1].freq = d1_mhz * freqMHz;
        record.cus[1].committed = committed / 2;
        const sim::EpochCapture capture{start,
                                        start + tickUs,
                                        start + tickUs,
                                        false,
                                        record,
                                        no_snapshots,
                                        sweep,
                                        no_decisions,
                                        no_applied,
                                        faults};
        recorder.onEpoch(capture);
    };

    dvfs::AccurateEstimates sweep;
    sweep.domainInstr = {{100.0, 120.0, 140.0}, {50.0, 60.0, 70.0}};
    gpu::FaultEpochCounters faults;
    faults.telemetryPerturbations = 2;
    faults.fallbackActive = true;

    epoch(0, 1700, 1700, 1000, nullptr, nullptr);
    epoch(tickUs, 1400, 1700, 900, &sweep, nullptr);
    epoch(2 * tickUs, 1400, 1000, 800, nullptr, &faults);

    sim::RunResult result;
    result.completed = true;
    result.epochs = 3;
    result.execTime = 3 * tickUs;
    result.energy = 0.00125;
    recorder.onRunEnd(result);

    std::ostringstream os;
    obs::writeChromeTrace(os, {{"synthetic", std::move(events)}});
    return os.str();
}

TEST_F(ObsTest, TimelineMatchesGoldenFile)
{
    const std::string got = syntheticTimelineJson();
    const std::string path =
        std::string(PCSTALL_TEST_DATA_DIR) + "/timeline_golden.json";
    if (std::getenv("PCSTALL_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << got;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << path << " missing; regenerate with PCSTALL_REGEN_GOLDEN=1";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << "timeline schema drifted; if intentional, regenerate the "
           "golden file with PCSTALL_REGEN_GOLDEN=1 and document the "
           "change in docs/observability.md";
}

TEST_F(ObsTest, TimelineCarriesExpectedEventMix)
{
    const std::string json = syntheticTimelineJson();
    EXPECT_NE(json.find("\"pcstall-timeline-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"1.70 GHz\""), std::string::npos);
    EXPECT_NE(json.find("\"1.40 GHz\""), std::string::npos);
    EXPECT_NE(json.find("\"V/f transition\""), std::string::npos);
    EXPECT_NE(json.find("\"fork-pre-execute\""), std::string::npos);
    EXPECT_NE(json.find("\"faults\""), std::string::npos);
    EXPECT_NE(json.find("\"run end\""), std::string::npos);
    EXPECT_NE(json.find("\"domain 1\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
}

// ---------------------------------------------------------------- //
// The headline property: byte-identical merges across threads       //
// ---------------------------------------------------------------- //

bench::BenchOptions
sweepOptions(unsigned threads)
{
    bench::BenchOptions opts;
    opts.cus = 4;
    opts.scale = 0.25;
    opts.threads = threads;
    return opts;
}

/** Run a small two-workload sweep and serialize the deterministic
 *  metrics section plus the full timeline document. */
std::pair<std::string, std::string>
sweepObservabilityDocs(unsigned threads)
{
    obs::resetAll();
    obs::setMetricsEnabled(true);
    obs::setTimelineEnabled(true);

    bench::SweepRunner runner(sweepOptions(threads));
    std::vector<bench::SweepCell> cells;
    for (const char *w : {"comd", "dgemm"}) {
        cells.push_back(runner.cell(w, "STALL", true));
        cells.push_back(runner.cell(w, "PCSTALL"));
    }
    const auto outcomes = runner.run(std::move(cells));
    for (const bench::CellOutcome &o : outcomes)
        EXPECT_TRUE(o.run.ok) << o.run.error;

    std::ostringstream metrics;
    obs::writeMetricsJson(metrics, obs::collectedSnapshot(),
                          /*include_timing=*/false);
    std::ostringstream timeline;
    obs::writeChromeTrace(timeline, obs::collectedTimelines());
    return {metrics.str(), timeline.str()};
}

TEST_F(ObsTest, SweepMetricsAndTimelineByteIdenticalAcrossThreads)
{
    const auto [metrics1, timeline1] = sweepObservabilityDocs(1);
    const auto [metrics4, timeline4] = sweepObservabilityDocs(4);
    // The whole point of run-context sharding and submission-order
    // collection: not just equal numbers - identical bytes.
    EXPECT_EQ(metrics1, metrics4);
    EXPECT_EQ(timeline1, timeline4);
    // And the documents are non-trivial.
    EXPECT_NE(metrics1.find("\"sim.epochs\""), std::string::npos);
    EXPECT_NE(metrics1.find("\"pc_table.lookups\""), std::string::npos);
    EXPECT_NE(metrics1.find("\"predict.error_pct\""),
              std::string::npos);
    EXPECT_NE(timeline1.find("GHz"), std::string::npos);
}

// ---------------------------------------------------------------- //
// Logging controls                                                  //
// ---------------------------------------------------------------- //

TEST(Logging, LogLevelByName)
{
    const LogLevel before = logLevel();
    EXPECT_TRUE(setLogLevelByName("debug"));
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    EXPECT_TRUE(setLogLevelByName("warn"));
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    EXPECT_TRUE(setLogLevelByName("error"));
    EXPECT_TRUE(setLogLevelByName("info"));
    EXPECT_EQ(logLevel(), LogLevel::Info);
    EXPECT_FALSE(setLogLevelByName("chatty"));
    EXPECT_EQ(logLevel(), LogLevel::Info); // unchanged on bad name
    setLogLevel(before);
}

TEST(Logging, WarnLimitedSuppressesAfterLimit)
{
    resetWarnLimits();
    for (int i = 0; i < 5; ++i)
        warnLimited("test-key", "repeated warning", 2);
    EXPECT_EQ(suppressedWarnCount("test-key"), 3u);
    EXPECT_EQ(suppressedWarnCount("other-key"), 0u);
    resetWarnLimits();
    EXPECT_EQ(suppressedWarnCount("test-key"), 0u);
}

// Rate limits are per-(site, run), not per process lifetime: a new
// warn scope (pushed by every obs::ScopedContext run boundary) gets
// its own tally, and the outer scope's tally is intact afterwards.
TEST(Logging, WarnLimitedScopesResetPerRun)
{
    resetWarnLimits();
    for (int i = 0; i < 5; ++i)
        warnLimited("scoped-key", "outer warning", 2);
    EXPECT_EQ(suppressedWarnCount("scoped-key"), 3u);

    {
        obs::RunContext cell("cell");
        obs::ScopedContext scope(cell);
        // Fresh scope: nothing suppressed yet, limits start over.
        EXPECT_EQ(suppressedWarnCount("scoped-key"), 0u);
        for (int i = 0; i < 3; ++i)
            warnLimited("scoped-key", "cell warning", 2);
        EXPECT_EQ(suppressedWarnCount("scoped-key"), 1u);
    }
    {
        // A second run re-reports from zero rather than inheriting
        // the first cell's tally.
        obs::RunContext cell("cell2");
        obs::ScopedContext scope(cell);
        EXPECT_EQ(suppressedWarnCount("scoped-key"), 0u);
        warnLimited("scoped-key", "cell2 warning", 2);
        EXPECT_EQ(suppressedWarnCount("scoped-key"), 0u);
    }
    // Back in the process-default scope, the outer tally survives.
    EXPECT_EQ(suppressedWarnCount("scoped-key"), 3u);
    resetWarnLimits();
}

} // namespace
