/**
 * @file
 * Tests of the replay trace library (docs/replay_studies.md): the
 * cache-key schema (what must miss, what may hit), publication and
 * sidecar guarding, corrupt-entry quarantine with live recapture, and
 * the SweepRunner determinism contract - a cached-replay sweep is
 * result-identical to a fresh-simulation sweep at any thread count.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/atomic_file.hh"
#include "sweep_runner.hh"
#include "trace/library.hh"

using namespace pcstall;

namespace
{

namespace fs = std::filesystem;

/** Fresh per-test scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) /
        ("pcstall_tlib_" + name + "_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

bench::BenchOptions
smallOptions(unsigned threads, const std::string &cache_dir = "")
{
    bench::BenchOptions opts;
    opts.cus = 4;
    opts.scale = 0.25;
    opts.threads = threads;
    opts.traceCacheDir = cache_dir;
    return opts;
}

trace::LibraryKey
keyFor(const bench::BenchOptions &opts, const std::string &design,
       bool shared = false)
{
    trace::LibraryKey key;
    key.harness = "test";
    key.workload = "comd";
    key.workloadDigest = "0123456789abcdef";
    key.design = design;
    key.runIndex = 0;
    key.fingerprint = bench::simConfigFingerprint(opts);
    key.shared = shared;
    return key;
}

std::vector<bench::SweepCell>
smallGrid(bench::SweepRunner &runner)
{
    std::vector<bench::SweepCell> cells;
    cells.push_back(runner.cell("comd", "STALL", true));
    cells.push_back(runner.cell("comd", "PCSTALL"));
    cells.push_back(runner.cell("dgemm", "STALL"));
    cells.push_back(runner.cell("dgemm", "PCSTALL"));
    return cells;
}

void
expectSameResult(const bench::RunOutcome &a, const bench::RunOutcome &b,
                 const std::string &what)
{
    ASSERT_TRUE(a.ok) << what << ": " << a.error;
    ASSERT_TRUE(b.ok) << what << ": " << b.error;
    EXPECT_EQ(a.result.execTime, b.result.execTime) << what;
    EXPECT_EQ(a.result.energy, b.result.energy) << what;
    EXPECT_EQ(a.result.instructions, b.result.instructions) << what;
    EXPECT_EQ(a.result.predictionAccuracy,
              b.result.predictionAccuracy) << what;
    EXPECT_EQ(a.result.transitions, b.result.transitions) << what;
    EXPECT_EQ(a.result.freqTimeShare, b.result.freqTimeShare) << what;
}

// ---------------------------------------------------------------- //
// Cache-key schema                                                  //
// ---------------------------------------------------------------- //

TEST(LibraryKey, SimulationAffectingConfigChangesMiss)
{
    // Anything that alters the epoch stream must alter the
    // fingerprint - a hit across these would replay the wrong run.
    const bench::BenchOptions base = smallOptions(1);

    bench::BenchOptions epoch = base;
    epoch.epochLen *= 2;
    EXPECT_NE(bench::simConfigFingerprint(base),
              bench::simConfigFingerprint(epoch));

    bench::BenchOptions seed = base;
    seed.seed += 1;
    EXPECT_NE(bench::simConfigFingerprint(base),
              bench::simConfigFingerprint(seed));

    bench::BenchOptions fault_seed = base;
    fault_seed.faults.telemetry.enabled = true;
    EXPECT_NE(bench::simConfigFingerprint(base),
              bench::simConfigFingerprint(fault_seed));

    bench::BenchOptions knob = base;
    knob.scale = 0.5;
    EXPECT_NE(bench::simConfigFingerprint(base),
              bench::simConfigFingerprint(knob));

    bench::BenchOptions cus = base;
    cus.cus = 8;
    EXPECT_NE(bench::simConfigFingerprint(base),
              bench::simConfigFingerprint(cus));
}

TEST(LibraryKey, ObservabilityOnlyChangesHit)
{
    // Metrics/timeline sinks never alter the simulated stream, so
    // they must not invalidate cached traces.
    const bench::BenchOptions base = smallOptions(1);
    bench::BenchOptions obs = base;
    obs.metricsOut = "/tmp/never-written.json";
    obs.threads = 8;
    EXPECT_EQ(bench::simConfigFingerprint(base),
              bench::simConfigFingerprint(obs));
}

TEST(LibraryKey, ExactTierMissesAcrossControllersSharedTierHits)
{
    const bench::BenchOptions opts = smallOptions(1);
    const trace::LibraryKey a = keyFor(opts, "PCSTALL");
    const trace::LibraryKey b = keyFor(opts, "STALL");
    EXPECT_NE(a.digest(), b.digest());

    // The shared what-if tier blanks the design slot: a
    // controller-only change resolves to the same stream.
    const trace::LibraryKey sa = keyFor(opts, "PCSTALL", true);
    const trace::LibraryKey sb = keyFor(opts, "STALL", true);
    EXPECT_EQ(sa.text(), sb.text());
    EXPECT_EQ(sa.digest(), sb.digest());
    // ...but never to an exact-tier entry.
    EXPECT_NE(sa.digest(), a.digest());
}

TEST(LibraryKey, DigestIsDeterministic)
{
    const trace::LibraryKey key = keyFor(smallOptions(1), "PCSTALL");
    EXPECT_EQ(key.digest(), key.digest());
    EXPECT_EQ(key.digest().size(), 32u);
}

// ---------------------------------------------------------------- //
// Library publication, sidecars, quarantine                         //
// ---------------------------------------------------------------- //

TEST(TraceLibrary, MissThenPublishThenHit)
{
    const std::string dir = scratchDir("publish");
    trace::TraceLibrary lib(dir);
    ASSERT_TRUE(lib.ok()) << lib.error();

    const trace::LibraryKey key = keyFor(smallOptions(1), "PCSTALL");
    EXPECT_EQ(lib.get(key).status,
              trace::TraceLibrary::GetStatus::Miss);

    // A trace alone (sidecar not yet published) is still a miss: the
    // sidecar is the commit point of the entry as a whole.
    ASSERT_EQ(store::writeFileAtomic(lib.entryPath(key), "bytes"), "");
    EXPECT_EQ(lib.get(key).status,
              trace::TraceLibrary::GetStatus::Miss);

    ASSERT_EQ(lib.publishKey(key), "");
    const trace::TraceLibrary::GetResult got = lib.get(key);
    EXPECT_EQ(got.status, trace::TraceLibrary::GetStatus::Hit);
    EXPECT_EQ(got.tracePath, lib.entryPath(key));
    EXPECT_EQ(lib.entryCount(), 1u);
}

TEST(TraceLibrary, SidecarMismatchIsAMissNotAHit)
{
    // A digest collision (or schema drift) surfaces as sidecar text
    // that differs from the probe key: must read as a miss, never as
    // someone else's trace.
    const std::string dir = scratchDir("collide");
    trace::TraceLibrary lib(dir);
    ASSERT_TRUE(lib.ok()) << lib.error();

    const trace::LibraryKey key = keyFor(smallOptions(1), "PCSTALL");
    ASSERT_EQ(store::writeFileAtomic(lib.entryPath(key), "bytes"), "");
    ASSERT_EQ(store::writeFileAtomic(lib.keyPath(key), "not the key"),
              "");
    EXPECT_EQ(lib.get(key).status,
              trace::TraceLibrary::GetStatus::Miss);
}

TEST(TraceLibrary, QuarantineMovesEntryAside)
{
    const std::string dir = scratchDir("quarantine");
    trace::TraceLibrary lib(dir);
    ASSERT_TRUE(lib.ok()) << lib.error();

    const trace::LibraryKey key = keyFor(smallOptions(1), "PCSTALL");
    ASSERT_EQ(store::writeFileAtomic(lib.entryPath(key), "garbage"),
              "");
    ASSERT_EQ(lib.publishKey(key), "");
    ASSERT_EQ(lib.get(key).status,
              trace::TraceLibrary::GetStatus::Hit);

    lib.quarantine(key, "decode failed (test)");
    EXPECT_EQ(lib.get(key).status,
              trace::TraceLibrary::GetStatus::Miss);
    EXPECT_EQ(lib.entryCount(), 0u);
    EXPECT_GE(lib.quarantinedCount(), 1u);
}

TEST(TraceLibrary, GcCollectsOrphansAndTemps)
{
    const std::string dir = scratchDir("gc");
    trace::TraceLibrary lib(dir);
    ASSERT_TRUE(lib.ok()) << lib.error();

    // A complete entry (kept), an orphan trace, a dangling sidecar
    // and a staging temp (all removed).
    const trace::LibraryKey keep = keyFor(smallOptions(1), "PCSTALL");
    ASSERT_EQ(store::writeFileAtomic(lib.entryPath(keep), "bytes"), "");
    ASSERT_EQ(lib.publishKey(keep), "");

    const trace::LibraryKey orphan = keyFor(smallOptions(1), "STALL");
    ASSERT_EQ(store::writeFileAtomic(lib.entryPath(orphan), "bytes"),
              "");
    const trace::LibraryKey dangling =
        keyFor(smallOptions(1), "GPHT");
    ASSERT_EQ(lib.publishKey(dangling), "");
    { std::ofstream(dir + "/stale.tmp.123") << "partial"; }

    EXPECT_EQ(lib.gcOrphans(), 3u);
    EXPECT_EQ(lib.entryCount(), 1u);
    EXPECT_EQ(lib.get(keep).status,
              trace::TraceLibrary::GetStatus::Hit);
}

// ---------------------------------------------------------------- //
// SweepRunner determinism contract                                  //
// ---------------------------------------------------------------- //

TEST(ReplaySweep, ColdWarmAndUncachedRunsAreResultIdentical)
{
    // Reference: no cache at all.
    bench::SweepRunner fresh(smallOptions(2));
    const auto want = fresh.run(smallGrid(fresh));

    const std::string dir = scratchDir("coldwarm");
    // Cold pass captures on miss...
    {
        bench::SweepRunner cold(smallOptions(2, dir));
        ASSERT_NE(cold.traceCache(), nullptr);
        const auto out = cold.run(smallGrid(cold));
        ASSERT_EQ(out.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
            expectSameResult(want[i].run, out[i].run,
                             "cold cell " + std::to_string(i));
        }
        // 4 cells + the one wanted baseline captured.
        EXPECT_EQ(cold.traceCache()->entryCount(), 5u);
    }
    // ...warm pass replays, at one thread and at four.
    for (const unsigned threads : {1u, 4u}) {
        bench::SweepRunner warm(smallOptions(threads, dir));
        const auto out = warm.run(smallGrid(warm));
        ASSERT_EQ(out.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
            expectSameResult(want[i].run, out[i].run,
                             "warm t" + std::to_string(threads) +
                                 " cell " + std::to_string(i));
        }
        expectSameResult(want[0].baseline, out[0].baseline,
                         "warm baseline");
        // Replays must not have re-captured anything.
        EXPECT_EQ(warm.traceCache()->entryCount(), 5u);
    }
}

TEST(ReplaySweep, ConfigChangeMissesInsteadOfReplayingStaleTrace)
{
    const std::string dir = scratchDir("configmiss");
    {
        bench::SweepRunner first(smallOptions(1, dir));
        auto cells = smallGrid(first);
        first.run(std::move(cells));
        EXPECT_EQ(first.traceCache()->entryCount(), 5u);
    }
    // A changed epoch length is a different stream: every cell (and
    // baseline) must capture anew rather than hit the stale entries.
    bench::BenchOptions changed = smallOptions(1, dir);
    changed.epochLen *= 2;
    bench::SweepRunner second(changed);
    auto cells = smallGrid(second);
    const auto out = second.run(std::move(cells));
    for (const bench::CellOutcome &cell : out)
        EXPECT_TRUE(cell.run.ok) << cell.run.error;
    EXPECT_EQ(second.traceCache()->entryCount(), 10u);
}

TEST(ReplaySweep, CorruptEntryIsQuarantinedAndRecapturedNotIngested)
{
    bench::SweepRunner fresh(smallOptions(1));
    const auto want = fresh.run(smallGrid(fresh));

    const std::string dir = scratchDir("selfheal");
    {
        bench::SweepRunner cold(smallOptions(1, dir));
        auto cells = smallGrid(cold);
        cold.run(std::move(cells));
    }
    // Truncate every published trace to garbage.
    std::size_t clobbered = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".pctrace") {
            std::ofstream(entry.path(), std::ios::trunc) << "xx";
            ++clobbered;
        }
    }
    ASSERT_EQ(clobbered, 5u);

    // The warm pass must detect the corruption, quarantine, recapture
    // live and still produce the uncached results exactly.
    bench::SweepRunner healed(smallOptions(1, dir));
    const auto out = healed.run(smallGrid(healed));
    ASSERT_EQ(out.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        expectSameResult(want[i].run, out[i].run,
                         "healed cell " + std::to_string(i));
    }
    EXPECT_EQ(healed.traceCache()->entryCount(), 5u);
    EXPECT_GE(healed.traceCache()->quarantinedCount(), 5u);

    // And the recaptured entries replay cleanly afterwards.
    bench::SweepRunner warm(smallOptions(1, dir));
    const auto again = warm.run(smallGrid(warm));
    for (std::size_t i = 0; i < want.size(); ++i) {
        expectSameResult(want[i].run, again[i].run,
                         "post-heal cell " + std::to_string(i));
    }
}

TEST(ReplaySweep, WhatIfTierSharesOneCaptureAcrossControllers)
{
    const std::string dir = scratchDir("whatif");
    bench::BenchOptions opts = smallOptions(2, dir);
    opts.traceWhatIf = true;

    bench::SweepRunner runner(opts);
    std::vector<bench::SweepCell> cells;
    cells.push_back(runner.cell("comd", "PCSTALL"));
    cells.push_back(runner.cell("comd", "STALL"));
    cells.push_back(runner.cell("comd", "GPHT"));
    const auto out = runner.run(std::move(cells));
    for (const bench::CellOutcome &cell : out)
        EXPECT_TRUE(cell.run.ok) << cell.run.error;
    // Three controllers collapse onto one shared stream capture.
    EXPECT_EQ(runner.traceCache()->entryCount(), 1u);

    // A second pass replays it for everyone, bit-identically.
    bench::SweepRunner warm(opts);
    std::vector<bench::SweepCell> again;
    again.push_back(warm.cell("comd", "PCSTALL"));
    again.push_back(warm.cell("comd", "STALL"));
    again.push_back(warm.cell("comd", "GPHT"));
    const auto rep = warm.run(std::move(again));
    for (std::size_t i = 0; i < out.size(); ++i) {
        expectSameResult(out[i].run, rep[i].run,
                         "what-if cell " + std::to_string(i));
    }
    EXPECT_EQ(warm.traceCache()->entryCount(), 1u);
}

} // namespace
