/**
 * @file
 * Regression tests for the hot-path performance work
 * (docs/performance.md): the pooled snapshot oracle and the in-cell
 * parallel sweep must be byte-identical to the legacy per-sample-copy
 * path, must leave the input chip untouched, must reuse pool storage
 * across epochs, and must not allocate per-sample in steady state.
 *
 * The binary overrides global operator new/delete with a counting
 * shim so the allocation guard can measure the sweep hot path
 * directly.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "gpu/gpu_chip.hh"
#include "harness.hh"
#include "oracle/fork_pre_execute.hh"
#include "oracle/snapshot_pool.hh"
#include "sim/experiment.hh"
#include "sim/parallel_executor.hh"

using namespace pcstall;

// --- counting allocator shim (whole binary) -------------------------

namespace
{
std::atomic<std::uint64_t> g_allocs{0};
}

// GCC pairs the replaced operator delete with the *default* operator
// new at some inlined call sites and warns about free(); the shim's
// operator new really does malloc, so the pairing is correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

// --- fixtures -------------------------------------------------------

namespace
{

bench::BenchOptions
smallOpts()
{
    bench::BenchOptions opts;
    opts.cus = 4;
    opts.scale = 0.125;
    opts.collectTrace = true;
    return opts;
}

/** The workloads the identity matrix runs over (ISSUE: three). */
const std::vector<std::string> kWorkloads = {"comd", "lulesh",
                                             "minife"};

/** Exact field-by-field RunResult comparison (no tolerances). */
void
expectIdenticalResults(const sim::RunResult &a, const sim::RunResult &b,
                       const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.predictionAccuracy, b.predictionAccuracy);
    EXPECT_EQ(a.transitions, b.transitions);
    EXPECT_EQ(a.transitionEnergy, b.transitionEnergy);
    EXPECT_EQ(a.freqTimeShare, b.freqTimeShare);
    EXPECT_EQ(a.finalTemperature, b.finalTemperature);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].start, b.trace[i].start);
        EXPECT_EQ(a.trace[i].domainState, b.trace[i].domainState);
        EXPECT_EQ(a.trace[i].domainCommitted,
                  b.trace[i].domainCommitted);
    }
}

sim::RunResult
runCell(const std::string &workload, const std::string &controller,
        sim::OracleMode mode, unsigned oracle_threads)
{
    const bench::BenchOptions opts = smallOpts();
    const auto app = bench::makeApp(workload, opts);
    EXPECT_TRUE(app);
    sim::RunConfig cfg = opts.runConfig();
    cfg.oracleMode = mode;
    cfg.oracleThreads = oracle_threads;
    sim::ExperimentDriver driver(cfg);
    const auto ctrl = bench::makeController(controller, cfg);
    return driver.run(app, *ctrl);
}

/** Exact AccurateEstimates comparison. */
void
expectIdenticalEstimates(const dvfs::AccurateEstimates &a,
                         const dvfs::AccurateEstimates &b)
{
    EXPECT_EQ(a.domainInstr, b.domainInstr);
    ASSERT_EQ(a.waves.size(), b.waves.size());
    for (std::size_t i = 0; i < a.waves.size(); ++i) {
        EXPECT_EQ(a.waves[i].cu, b.waves[i].cu);
        EXPECT_EQ(a.waves[i].slot, b.waves[i].slot);
        EXPECT_EQ(a.waves[i].startPcAddr, b.waves[i].startPcAddr);
        EXPECT_EQ(a.waves[i].sensitivity, b.waves[i].sensitivity);
        EXPECT_EQ(a.waves[i].level, b.waves[i].level);
        EXPECT_EQ(a.waves[i].ageRank, b.waves[i].ageRank);
    }
}

/** A chip two epochs into @p workload (live waves at the boundary). */
std::unique_ptr<gpu::GpuChip>
warmChip(const std::string &workload, const bench::BenchOptions &opts)
{
    const auto app = bench::makeApp(workload, opts);
    EXPECT_TRUE(app);
    gpu::GpuConfig gcfg = opts.runConfig().gpu;
    auto chip = std::make_unique<gpu::GpuChip>(gcfg, app);
    gpu::EpochRecord scratch;
    for (int e = 0; e < 2; ++e) {
        chip->runUntil((e + 1) * opts.epochLen);
        chip->harvestEpoch(e * opts.epochLen, scratch);
    }
    return chip;
}

} // namespace

// --- pooled-vs-copy end-to-end identity -----------------------------

TEST(PerfPath, PooledRunsAreByteIdenticalAcrossWorkloadsAndControllers)
{
    for (const std::string &workload : kWorkloads) {
        for (const std::string &controller :
             {std::string("ACCPC"), std::string("ORACLE")}) {
            const auto copy =
                runCell(workload, controller, sim::OracleMode::Copy, 1);
            const auto pool =
                runCell(workload, controller, sim::OracleMode::Pool, 1);
            const auto pool_full = runCell(
                workload, controller, sim::OracleMode::PoolFull, 1);
            expectIdenticalResults(copy, pool,
                                   workload + "/" + controller);
            expectIdenticalResults(copy, pool_full,
                                   workload + "/" + controller +
                                       "/pool-full");
        }
    }
}

TEST(PerfPath, OracleThreadCountDoesNotChangeResults)
{
    const auto serial =
        runCell("comd", "ACCPC", sim::OracleMode::Pool, 1);
    const auto threaded =
        runCell("comd", "ACCPC", sim::OracleMode::Pool, 4);
    expectIdenticalResults(serial, threaded, "threads 1 vs 4");
}

TEST(PerfPath, ParallelSweepMatchesSerialSweep)
{
    const bench::BenchOptions opts = smallOpts();
    const auto chip = warmChip("lulesh", opts);
    const dvfs::DomainMap domains(opts.cus, opts.cusPerDomain);
    const power::VfTable table = power::VfTable::paperTable();

    oracle::SnapshotPool serial_pool;
    oracle::SweepOptions serial_opts;
    serial_opts.pool = &serial_pool;
    const auto serial = oracle::forkPreExecuteSweep(
        *chip, domains, table, opts.epochLen, serial_opts);

    oracle::SnapshotPool mt_pool;
    sim::ParallelExecutor exec(4);
    oracle::SweepOptions mt_opts;
    mt_opts.pool = &mt_pool;
    mt_opts.executor = &exec;
    const auto parallel = oracle::forkPreExecuteSweep(
        *chip, domains, table, opts.epochLen, mt_opts);

    expectIdenticalEstimates(serial, parallel);
}

// --- pool reuse across epochs ---------------------------------------

TEST(PerfPath, PoolIsReusedAcrossEpochsAndStaysIdenticalToCopies)
{
    const bench::BenchOptions opts = smallOpts();
    const auto app = bench::makeApp("comd", opts);
    ASSERT_TRUE(app);
    gpu::GpuConfig gcfg = opts.runConfig().gpu;
    gpu::GpuChip chip(gcfg, app);
    const dvfs::DomainMap domains(opts.cus, opts.cusPerDomain);
    const power::VfTable table = power::VfTable::paperTable();

    oracle::SnapshotPool pool;
    oracle::SweepOptions pooled;
    pooled.pool = &pool;

    gpu::EpochRecord scratch;
    Tick t = 0;
    for (int epoch = 0; epoch < 4; ++epoch) {
        chip.runUntil(t + opts.epochLen);
        chip.harvestEpoch(t, scratch);
        t += opts.epochLen;

        const auto from_pool = oracle::forkPreExecuteSweep(
            chip, domains, table, opts.epochLen, pooled);
        const auto from_copies = oracle::forkPreExecuteSweep(
            chip, domains, table, opts.epochLen, oracle::SweepOptions{});
        SCOPED_TRACE("epoch " + std::to_string(epoch));
        expectIdenticalEstimates(from_pool, from_copies);
        // The pool holds exactly one scratch chip per V/f state and
        // never grows past that across epochs.
        EXPECT_EQ(pool.slotCount(), table.numStates());
    }

    // From the second sweep on, every restore is served by the delta
    // path (the first sweep full-restores to anchor the chains).
    EXPECT_GE(pool.deltaRestores(), 2 * table.numStates());
}

TEST(PerfPath, ClearKeepsCapacityAndNextSweepStaysIdentical)
{
    const bench::BenchOptions opts = smallOpts();
    const auto chip = warmChip("comd", opts);
    const dvfs::DomainMap domains(opts.cus, opts.cusPerDomain);
    const power::VfTable table = power::VfTable::paperTable();

    oracle::SnapshotPool pool;
    oracle::SweepOptions pooled;
    pooled.pool = &pool;
    (void)oracle::forkPreExecuteSweep(*chip, domains, table,
                                      opts.epochLen, pooled);
    ASSERT_EQ(pool.slotCount(), table.numStates());
    const std::uint64_t full_before = pool.fullRestores();

    // clear() forgets snapshot state (delta chains included) but keeps
    // every allocated slot chip, so a driver switching applications
    // does not re-pay the pool's construction cost.
    pool.clear();
    EXPECT_EQ(pool.slotCount(), table.numStates());

    const auto after_clear = oracle::forkPreExecuteSweep(
        *chip, domains, table, opts.epochLen, pooled);
    const auto reference = oracle::forkPreExecuteSweep(
        *chip, domains, table, opts.epochLen, oracle::SweepOptions{});
    expectIdenticalEstimates(after_clear, reference);
    // The post-clear sweep may not delta-restore against chains that
    // were dropped: every slot full-restores once.
    EXPECT_GE(pool.fullRestores(), full_before + table.numStates());
}

// --- const-ness of the input chip (restore verification) ------------

TEST(PerfPath, SweepLeavesInputChipUntouchedUnderVerification)
{
    const bench::BenchOptions opts = smallOpts();
    const auto chip = warmChip("minife", opts);
    const dvfs::DomainMap domains(opts.cus, opts.cusPerDomain);
    const power::VfTable table = power::VfTable::paperTable();
    const std::uint64_t before = chip->stateFingerprint();

    oracle::SnapshotPool pool;
    oracle::SweepOptions verified;
    verified.pool = &pool;
    // Forces the per-restore and end-of-sweep fingerprint checks even
    // in NDEBUG builds; a mutation of the input chip would fatal()
    // inside the sweep.
    verified.verifyRestore = true;
    const auto est = oracle::forkPreExecuteSweep(
        *chip, domains, table, opts.epochLen, verified);
    EXPECT_FALSE(est.empty());
    EXPECT_EQ(chip->stateFingerprint(), before);

    // Same property on the legacy copy path.
    oracle::SweepOptions copy_verified;
    copy_verified.verifyRestore = true;
    (void)oracle::forkPreExecuteSweep(*chip, domains, table,
                                      opts.epochLen, copy_verified);
    EXPECT_EQ(chip->stateFingerprint(), before);
}

// --- allocation guard -----------------------------------------------

TEST(PerfPath, SteadyStatePooledSweepBarelyAllocates)
{
    const bench::BenchOptions opts = smallOpts();
    const auto chip = warmChip("comd", opts);
    const dvfs::DomainMap domains(opts.cus, opts.cusPerDomain);
    const power::VfTable table = power::VfTable::paperTable();

    oracle::SnapshotPool pool;
    oracle::SweepOptions pooled;
    pooled.pool = &pool;

    // First pooled sweep pays the pool's one-time chip copies and
    // buffer high-water marks; it is not the steady state.
    (void)oracle::forkPreExecuteSweep(*chip, domains, table,
                                      opts.epochLen, pooled);
    (void)oracle::forkPreExecuteSweep(*chip, domains, table,
                                      opts.epochLen, pooled);

    const std::uint64_t pool_before =
        g_allocs.load(std::memory_order_relaxed);
    const auto est = oracle::forkPreExecuteSweep(
        *chip, domains, table, opts.epochLen, pooled);
    const std::uint64_t pool_allocs =
        g_allocs.load(std::memory_order_relaxed) - pool_before;

    const std::uint64_t copy_before =
        g_allocs.load(std::memory_order_relaxed);
    const auto est_copy = oracle::forkPreExecuteSweep(
        *chip, domains, table, opts.epochLen, oracle::SweepOptions{});
    const std::uint64_t copy_allocs =
        g_allocs.load(std::memory_order_relaxed) - copy_before;

    expectIdenticalEstimates(est, est_copy);

    // Running the sampled epochs allocates either way (cache / MSHR
    // bookkeeping inside the simulation), but the pooled sweep must
    // at least save the per-sample chip copies the legacy path makes.
    EXPECT_LT(pool_allocs, copy_allocs)
        << "pooled sweep should allocate strictly less than the "
        << "copy path (copy: " << copy_allocs
        << ", pool: " << pool_allocs << ")";
}

TEST(PerfPath, SteadyStateRestoreBarelyAllocates)
{
    const bench::BenchOptions opts = smallOpts();
    const auto chip = warmChip("comd", opts);

    oracle::SnapshotPool pool;
    pool.ensureSlots(1);
    // First restore copy-constructs the scratch chip; the second
    // settles container high-water marks. Steady state starts at the
    // third.
    pool.restore(0, *chip);
    pool.restore(0, *chip);

    const std::uint64_t before =
        g_allocs.load(std::memory_order_relaxed);
    gpu::GpuChip &restored = pool.restore(0, *chip);
    const std::uint64_t restore_allocs =
        g_allocs.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(restored.now(), chip->now());

    const std::uint64_t copy_before =
        g_allocs.load(std::memory_order_relaxed);
    const gpu::GpuChip copy = *chip;
    const std::uint64_t copy_allocs =
        g_allocs.load(std::memory_order_relaxed) - copy_before;
    EXPECT_EQ(copy.now(), chip->now());

    // A steady-state restore reuses the scratch chip's buffers; a
    // fresh deep copy allocates every container again.
    EXPECT_LE(restore_allocs, 16)
        << "pool restore should be (nearly) allocation-free";
    EXPECT_LT(restore_allocs * 4, copy_allocs)
        << "restore should allocate <<25% of a deep copy (copy: "
        << copy_allocs << ", restore: " << restore_allocs << ")";
}
