/**
 * @file
 * Cross-module integration tests: real Table II workloads under the
 * full driver + controller stack, checking the paper's qualitative
 * claims end to end on a reduced configuration.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/pcstall_controller.hh"
#include "dvfs/hierarchical.hh"
#include "models/history_controller.hh"
#include "models/reactive_controller.hh"
#include "oracle/oracle_controllers.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

using namespace pcstall;
using namespace pcstall::sim;

namespace
{

RunConfig
testConfig(std::uint32_t cus = 4)
{
    RunConfig cfg;
    cfg.gpu.numCus = cus;
    cfg.maxSimTime = 3 * tickMs;
    cfg.scaled();
    return cfg;
}

std::shared_ptr<const isa::Application>
app(const std::string &name, std::uint32_t cus = 4, double scale = 0.3)
{
    workloads::WorkloadParams p;
    p.numCus = cus;
    p.scale = scale;
    return std::make_shared<const isa::Application>(
        workloads::makeWorkload(name, p));
}

} // namespace

TEST(Integration, ComdCompletesUnderAllImplementableDesigns)
{
    ExperimentDriver driver(testConfig());
    const auto a = app("comd");

    for (const auto kind : {models::EstimationKind::Stall,
                            models::EstimationKind::Lead,
                            models::EstimationKind::Crit,
                            models::EstimationKind::Crisp}) {
        models::ReactiveController c(kind);
        const RunResult r = driver.run(a, c);
        EXPECT_TRUE(r.completed) << models::estimationKindName(kind);
        EXPECT_GT(r.instructions, 0u);
    }
    core::PcstallController pc(core::PcstallConfig::forEpoch(tickUs),
                               4);
    EXPECT_TRUE(driver.run(a, pc).completed);
}

TEST(Integration, DvfsReducesEd2pVsStaticNominalOnMixedWorkload)
{
    ExperimentDriver driver(testConfig());
    const auto a = app("comd");

    dvfs::StaticController nominal(driver.nominalState());
    const RunResult base = driver.run(a, nominal);

    core::PcstallController pc(core::PcstallConfig::forEpoch(tickUs),
                               4);
    const RunResult dvfs_run = driver.run(a, pc);

    ASSERT_TRUE(base.completed);
    ASSERT_TRUE(dvfs_run.completed);
    // PCSTALL should not be materially worse than static nominal.
    EXPECT_LT(dvfs_run.ed2p(), base.ed2p() * 1.10);
}

TEST(Integration, OracleBeatsReactiveOnEd2p)
{
    ExperimentDriver driver(testConfig(2));
    const auto a = app("BwdBN", 2, 0.25);

    oracle::OracleController oracle_c;
    const RunResult oracle_r = driver.run(a, oracle_c);

    models::ReactiveController crisp(models::EstimationKind::Crisp);
    const RunResult crisp_r = driver.run(a, crisp);

    ASSERT_TRUE(oracle_r.completed);
    ASSERT_TRUE(crisp_r.completed);
    // Per-epoch greedy selection is a heuristic; allow a small margin
    // on tiny configurations.
    EXPECT_LE(oracle_r.ed2p(), crisp_r.ed2p() * 1.10);
}

TEST(Integration, MemoryBoundWorkloadParksLow)
{
    ExperimentDriver driver(testConfig(2));
    const auto a = app("xsbench", 2, 0.25);
    core::PcstallController pc(core::PcstallConfig::forEpoch(tickUs),
                               2);
    const RunResult r = driver.run(a, pc);
    ASSERT_TRUE(r.completed);
    // Most domain-epochs in the lower half of the V/f range.
    double low_share = 0.0;
    for (std::size_t s = 0; s < 5; ++s)
        low_share += r.freqTimeShare[s];
    EXPECT_GE(low_share, 0.5);
}

TEST(Integration, ComputeBoundWorkloadRunsHighForEd2p)
{
    ExperimentDriver driver(testConfig(2));
    const auto a = app("hacc", 2, 0.25);
    core::PcstallController pc(core::PcstallConfig::forEpoch(tickUs),
                               2);
    const RunResult r = driver.run(a, pc);
    ASSERT_TRUE(r.completed);
    double high_share = 0.0;
    for (std::size_t s = 5; s < 10; ++s)
        high_share += r.freqTimeShare[s];
    EXPECT_GT(high_share, 0.4);
}

TEST(Integration, AccpcRunsWithElapsedSweeps)
{
    ExperimentDriver driver(testConfig(2));
    const auto a = app("comd", 2, 0.2);
    core::PcstallConfig cfg = core::PcstallConfig::forEpoch(tickUs);
    cfg.accurateEstimates = true;
    core::PcstallController accpc(cfg, 2);
    const RunResult r = driver.run(a, accpc);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.predictionAccuracy, 0.0);
}

TEST(Integration, AccreacRunsWithElapsedSweeps)
{
    ExperimentDriver driver(testConfig(2));
    const auto a = app("comd", 2, 0.2);
    oracle::AccurateReactiveController accreac;
    const RunResult r = driver.run(a, accreac);
    EXPECT_TRUE(r.completed);
}

TEST(Integration, DeterministicAcrossRuns)
{
    ExperimentDriver driver(testConfig(2));
    const auto a = app("quickS", 2, 0.2);
    core::PcstallController c1(core::PcstallConfig::forEpoch(tickUs), 2);
    core::PcstallController c2(core::PcstallConfig::forEpoch(tickUs), 2);
    const RunResult r1 = driver.run(a, c1);
    const RunResult r2 = driver.run(a, c2);
    EXPECT_EQ(r1.execTime, r2.execTime);
    EXPECT_EQ(r1.instructions, r2.instructions);
    EXPECT_DOUBLE_EQ(r1.energy, r2.energy);
}

/** Every workload completes under PCSTALL at reduced scale. */
class AllWorkloads : public ::testing::TestWithParam<const char *>
{};

TEST_P(AllWorkloads, CompletesUnderPcstall)
{
    ExperimentDriver driver(testConfig(2));
    const auto a = app(GetParam(), 2, 0.15);
    core::PcstallController pc(core::PcstallConfig::forEpoch(tickUs),
                               2);
    const RunResult r = driver.run(a, pc);
    EXPECT_TRUE(r.completed) << GetParam();
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.energy, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    TableII, AllWorkloads,
    ::testing::Values("comd", "hpgmg", "lulesh", "minife", "xsbench",
                      "hacc", "quickS", "pennant", "snapc", "dgemm",
                      "BwdBN", "BwdPool", "BwdSoft", "FwdBN", "FwdPool",
                      "FwdSoft"));

TEST(Integration, HierarchicalForwardsSweepsForOracle)
{
    // The power-cap layer must forward the wrapped controller's sweep
    // requirements so ORACLE+CAP still gets its upcoming estimates.
    ExperimentDriver driver(testConfig(2));
    const auto a = app("BwdBN", 2, 0.25);
    oracle::OracleController inner;
    dvfs::HierarchicalConfig hcfg;
    hcfg.powerCap = 10.0;
    hcfg.reviewEpochs = 5;
    dvfs::HierarchicalPowerManager mgr(inner, hcfg);
    EXPECT_EQ(mgr.sweepNeed(), dvfs::SweepNeed::Upcoming);
    const RunResult r = driver.run(a, mgr);
    EXPECT_TRUE(r.completed);
}

TEST(Integration, GphtCompletesOnRealWorkload)
{
    ExperimentDriver driver(testConfig(2));
    const auto a = app("BwdBN", 2, 0.25);
    models::HistoryConfig hcfg;
    hcfg.estimator.waveSlots = 40;
    models::HistoryController gpht(hcfg, 2);
    const RunResult r = driver.run(a, gpht);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.predictionAccuracy, 0.0);
}

TEST(Integration, MarginalObjectiveCompletes)
{
    RunConfig cfg = testConfig(2);
    cfg.objective = dvfs::Objective::MarginalEd2p;
    ExperimentDriver driver(cfg);
    const auto a = app("comd", 2, 0.2);
    core::PcstallController pc(core::PcstallConfig::forEpoch(tickUs),
                               2);
    const RunResult r = driver.run(a, pc);
    EXPECT_TRUE(r.completed);
}
