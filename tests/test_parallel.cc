/**
 * @file
 * Tests of the parallel sweep execution layer: the ParallelExecutor
 * pool itself, the Rng::split purity the determinism contract rests
 * on, the FatalError contract, and the headline properties - a
 * SweepRunner sweep is bit-identical for every --threads value, and
 * one broken cell yields a diagnostic while the rest of the sweep
 * completes.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "dvfs/hierarchical.hh"
#include "expect_fatal.hh"
#include "sim/parallel_executor.hh"
#include "sweep_runner.hh"

using namespace pcstall;

namespace
{

// ---------------------------------------------------------------- //
// ParallelExecutor                                                  //
// ---------------------------------------------------------------- //

TEST(ParallelExecutor, RunsEveryIndexExactlyOnce)
{
    sim::ParallelExecutor pool(4);
    constexpr std::size_t n = 200;
    std::vector<std::atomic<int>> hits(n);
    pool.forEach(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelExecutor, SingleThreadRunsInline)
{
    sim::ParallelExecutor pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    const auto main_id = std::this_thread::get_id();
    bool all_inline = true;
    pool.forEach(8, [&](std::size_t) {
        if (std::this_thread::get_id() != main_id)
            all_inline = false;
    });
    EXPECT_TRUE(all_inline);
}

TEST(ParallelExecutor, MapReturnsSubmissionOrder)
{
    sim::ParallelExecutor pool(4);
    const auto out = pool.map<std::size_t>(
        64, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelExecutor, ThrowingTaskDoesNotPoisonBatch)
{
    sim::ParallelExecutor pool(4);
    constexpr std::size_t n = 32;
    std::vector<std::atomic<int>> ran(n);
    bool threw = false;
    std::string what;
    try {
        pool.forEach(n, [&](std::size_t i) {
            ran[i].fetch_add(1);
            if (i == 7 || i == 19)
                throw std::runtime_error("task " + std::to_string(i));
        });
    } catch (const std::runtime_error &e) {
        threw = true;
        what = e.what();
    }
    EXPECT_TRUE(threw);
    // The lowest-index exception is the one rethrown ...
    EXPECT_EQ(what, "task 7");
    // ... and every other index still executed.
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(ran[i].load(), 1) << "index " << i;
}

TEST(ParallelExecutor, ReusableAcrossBatches)
{
    sim::ParallelExecutor pool(2);
    for (int round = 0; round < 3; ++round) {
        std::atomic<int> sum{0};
        pool.forEach(10, [&](std::size_t i) {
            sum.fetch_add(static_cast<int>(i));
        });
        EXPECT_EQ(sum.load(), 45);
    }
}

// ---------------------------------------------------------------- //
// Determinism primitives                                            //
// ---------------------------------------------------------------- //

TEST(RngSplit, IsAPureFunctionOfItsArguments)
{
    const std::uint64_t a = Rng::split(42, "comd", "PCSTALL", 0).next();
    const std::uint64_t b = Rng::split(42, "comd", "PCSTALL", 0).next();
    EXPECT_EQ(a, b);
    EXPECT_NE(a, Rng::split(43, "comd", "PCSTALL", 0).next());
    EXPECT_NE(a, Rng::split(42, "lulesh", "PCSTALL", 0).next());
    EXPECT_NE(a, Rng::split(42, "comd", "STALL", 0).next());
    EXPECT_NE(a, Rng::split(42, "comd", "PCSTALL", 1).next());
}

TEST(FatalContract, FatalThrowsTypedExceptionInsteadOfExiting)
{
    EXPECT_FATAL(fatal("boom"), "boom");
    EXPECT_FATAL(fatalIf(true, "guarded"), "guarded");
    EXPECT_NO_THROW(fatalIf(false, "not taken"));
}

// ---------------------------------------------------------------- //
// SweepRunner                                                       //
// ---------------------------------------------------------------- //

bench::BenchOptions
smallOptions(unsigned threads)
{
    bench::BenchOptions opts;
    opts.cus = 4;
    opts.scale = 0.25;
    opts.threads = threads;
    return opts;
}

bench::ControllerFactory
cappedPcstallFactory()
{
    return [](const sim::RunConfig &rc) {
        dvfs::HierarchicalConfig hier;
        hier.powerCap = 40.0;
        hier.reviewEpochs = 10;
        return std::make_unique<dvfs::HierarchicalPowerManager>(
            bench::makeController("PCSTALL", rc), hier);
    };
}

std::vector<bench::SweepCell>
determinismGrid(bench::SweepRunner &runner,
                const std::vector<std::string> &workloads)
{
    std::vector<bench::SweepCell> cells;
    for (const std::string &w : workloads) {
        cells.push_back(runner.cell(w, "STALL", true));
        cells.push_back(runner.cell(w, "PCSTALL"));
        bench::SweepCell capped = runner.cell(w, "PCSTALL+CAP");
        capped.factory = cappedPcstallFactory();
        cells.push_back(capped);
    }
    return cells;
}

void
expectIdenticalOutcome(const bench::RunOutcome &serial,
                       const bench::RunOutcome &parallel,
                       const std::string &label)
{
    SCOPED_TRACE(label);
    ASSERT_EQ(serial.ok, parallel.ok);
    if (!serial.ok)
        return;
    const sim::RunResult &a = serial.result;
    const sim::RunResult &b = parallel.result;
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.energy, b.energy); // exact: same arithmetic, same order
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.predictionAccuracy, b.predictionAccuracy);
    EXPECT_EQ(a.transitions, b.transitions);
    EXPECT_EQ(a.completed, b.completed);
}

TEST(SweepRunner, ThreadCountDoesNotChangeResults)
{
    const std::vector<std::string> workloads{"comd", "BwdBN", "dgemm"};

    bench::SweepRunner serial(smallOptions(1));
    ASSERT_EQ(serial.threads(), 1u);
    const auto base = serial.run(determinismGrid(serial, workloads));

    bench::SweepRunner parallel(smallOptions(4));
    ASSERT_EQ(parallel.threads(), 4u);
    const auto par = parallel.run(determinismGrid(parallel, workloads));

    ASSERT_EQ(base.size(), par.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        expectIdenticalOutcome(base[i].run, par[i].run,
                               "cell " + std::to_string(i));
        EXPECT_TRUE(base[i].run.ok) << base[i].run.error;
    }
    // The STALL cells asked for baselines; those must agree too.
    for (std::size_t i = 0; i < base.size(); i += 3) {
        expectIdenticalOutcome(base[i].baseline, par[i].baseline,
                               "baseline " + std::to_string(i));
        EXPECT_TRUE(base[i].baseline.ok) << base[i].baseline.error;
    }
}

TEST(SweepRunner, RepeatedCellsGetDistinctCapturePaths)
{
    bench::BenchOptions opts = smallOptions(2);
    opts.traceOut = ::testing::TempDir() + "pcstall_repeat_" +
                    std::to_string(static_cast<long>(::getpid())) +
                    ".pctrace";
    bench::SweepRunner runner(opts);
    std::vector<bench::SweepCell> cells;
    cells.push_back(runner.cell("comd", "PCSTALL"));
    cells.push_back(runner.cell("comd", "PCSTALL"));
    const auto out = runner.run(std::move(cells));
    ASSERT_EQ(out.size(), 2u);
    ASSERT_TRUE(out[0].run.ok) << out[0].run.error;
    ASSERT_TRUE(out[1].run.ok) << out[1].run.error;

    // Repeats gain a run-index suffix, so the second capture does not
    // silently overwrite the first.
    const std::string first = ::testing::TempDir() +
                              "pcstall_repeat_" +
                              std::to_string(
                                  static_cast<long>(::getpid())) +
                              "-comd-PCSTALL.pctrace";
    const std::string second = ::testing::TempDir() +
                               "pcstall_repeat_" +
                               std::to_string(
                                   static_cast<long>(::getpid())) +
                               "-comd-PCSTALL-r1.pctrace";
    std::ifstream a(first), b(second);
    EXPECT_TRUE(a.good()) << first;
    EXPECT_TRUE(b.good()) << second;
    std::remove(first.c_str());
    std::remove(second.c_str());
}

TEST(SweepRunner, BrokenCellDoesNotTakeDownTheSweep)
{
    bench::SweepRunner runner(smallOptions(4));
    std::vector<bench::SweepCell> cells;
    cells.push_back(runner.cell("comd", "STALL"));
    bench::SweepCell bad = runner.cell("comd", "PCSTALL");
    bad.opts.cusPerDomain = 3; // 4 CUs: does not divide evenly
    cells.push_back(bad);
    cells.push_back(runner.cell("comd", "ORACLE"));
    bench::SweepCell unknown = runner.cell("comd", "NO-SUCH-DESIGN");
    cells.push_back(unknown);

    const auto out = runner.run(std::move(cells));
    ASSERT_EQ(out.size(), 4u);
    EXPECT_TRUE(out[0].run.ok) << out[0].run.error;
    EXPECT_FALSE(out[1].run.ok);
    EXPECT_FALSE(out[1].run.error.empty());
    EXPECT_TRUE(out[2].run.ok) << out[2].run.error;
    EXPECT_FALSE(out[3].run.ok);
    EXPECT_FALSE(out[3].run.error.empty());
}

TEST(SweepRunner, BaselineIsMemoizedAndShared)
{
    bench::SweepRunner runner(smallOptions(4));
    std::vector<bench::SweepCell> cells;
    cells.push_back(runner.cell("comd", "STALL", true));
    cells.push_back(runner.cell("comd", "PCSTALL", true));
    const auto out = runner.run(std::move(cells));
    ASSERT_EQ(out.size(), 2u);
    ASSERT_TRUE(out[0].baseline.ok) << out[0].baseline.error;
    ASSERT_TRUE(out[1].baseline.ok) << out[1].baseline.error;
    // Same (workload, config) key -> the one cached baseline run.
    EXPECT_EQ(out[0].baseline.result.energy,
              out[1].baseline.result.energy);
    EXPECT_EQ(out[0].baseline.result.execTime,
              out[1].baseline.result.execTime);

    // And the standalone accessor returns the same cached run.
    const auto direct =
        runner.staticBaseline("comd", runner.options());
    ASSERT_TRUE(direct.ok);
    EXPECT_EQ(direct.result.energy, out[0].baseline.result.energy);
}

TEST(SweepRunner, MapContainsFatalErrorsPerIndex)
{
    bench::SweepRunner runner(smallOptions(4));
    const auto out = runner.map<int>(8, [](std::size_t i) {
        fatalIf(i == 3, "index 3 is broken");
        return static_cast<int>(i) + 1;
    });
    ASSERT_EQ(out.size(), 8u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i == 3 ? 0 : static_cast<int>(i) + 1);
}

TEST(SweepRunner, ContainedFailuresAreTallied)
{
    const std::uint64_t before = bench::sweepFailureCount();
    bench::SweepRunner runner(smallOptions(2));
    std::vector<bench::SweepCell> cells;
    cells.push_back(runner.cell("comd", "STALL"));
    cells.push_back(runner.cell("comd", "NO-SUCH-DESIGN"));
    const auto out = runner.run(std::move(cells));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].run.ok);
    EXPECT_FALSE(out[1].run.ok);
    EXPECT_EQ(bench::sweepFailureCount() - before, 1u);
}

TEST(GuardedMain, ConvertsContainedFailuresToExitOne)
{
    // A clean body exits with its own return value.
    EXPECT_EQ(bench::guardedMain([] { return 0; }), 0);
    EXPECT_EQ(bench::guardedMain([] { return 3; }), 3);
    // A body whose sweep contained a failure exits 1 even though the
    // sweep itself completed.
    EXPECT_EQ(bench::guardedMain([] {
                  bench::noteSweepFailure();
                  return 0;
              }),
              1);
    // Failures recorded before the body (e.g. by an earlier test) do
    // not leak into this body's verdict.
    EXPECT_EQ(bench::guardedMain([] { return 0; }), 0);
    // An uncaught FatalError still exits 1.
    EXPECT_EQ(bench::guardedMain([]() -> int {
                  fatal("escaped the sweep");
              }),
              1);
}

} // namespace
