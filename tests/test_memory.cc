/** @file Unit tests for src/memory: caches, hierarchy, contention. */

#include <gtest/gtest.h>

#include "expect_fatal.hh"

#include "memory/cache_model.hh"
#include "memory/memory_system.hh"

using namespace pcstall;
using namespace pcstall::memory;

TEST(CacheModel, HitAfterFill)
{
    CacheModel c(1024, 64, 4);
    EXPECT_FALSE(c.access(0x1000, true));
    EXPECT_TRUE(c.access(0x1000, true));
    EXPECT_TRUE(c.access(0x1010, true)); // same line
}

TEST(CacheModel, LruEviction)
{
    // 4 sets x 2 ways x 64 B lines = 512 B.
    CacheModel c(512, 64, 2);
    // Three lines mapping to the same set (stride = sets * line).
    const std::uint64_t stride = 4 * 64;
    c.access(0 * stride, true);
    c.access(1 * stride, true);
    c.access(0 * stride, true);      // touch 0: 1 becomes LRU
    c.access(2 * stride, true);      // evicts 1
    EXPECT_TRUE(c.probe(0 * stride));
    EXPECT_FALSE(c.probe(1 * stride));
    EXPECT_TRUE(c.probe(2 * stride));
}

TEST(CacheModel, NoAllocateLeavesMiss)
{
    CacheModel c(1024, 64, 4);
    EXPECT_FALSE(c.access(0x2000, false));
    EXPECT_FALSE(c.probe(0x2000));
}

TEST(CacheModel, FlushInvalidates)
{
    CacheModel c(1024, 64, 4);
    c.access(0x40, true);
    c.flush();
    EXPECT_FALSE(c.probe(0x40));
}

TEST(CacheModel, CountersTrack)
{
    CacheModel c(1024, 64, 4);
    c.access(0, true);
    c.access(0, true);
    EXPECT_EQ(c.accessCount(), 2u);
    EXPECT_EQ(c.hitCount(), 1u);
}

TEST(CacheModel, Geometry)
{
    CacheModel c(16 * 1024, 64, 4);
    EXPECT_EQ(c.numSets(), 64u);
    EXPECT_EQ(c.numWays(), 4u);
    EXPECT_EQ(c.lineSize(), 64u);
}

namespace
{

MemConfig
smallConfig()
{
    MemConfig cfg;
    cfg.numCus = 2;
    cfg.l2Banks = 4;
    cfg.l2SizeBytes = 256 * 1024;
    cfg.dramChannels = 2;
    return cfg;
}

} // namespace

TEST(MemorySystem, L1HitIsFastAndScalesWithCuClock)
{
    MemorySystem mem(smallConfig());
    const Tick fast = clockPeriod(2'000 * freqMHz);
    const Tick slow = clockPeriod(1'000 * freqMHz);

    mem.access(0, 0x100, false, 0, fast); // fill
    const MemResult hit_fast = mem.access(0, 0x100, false, 1000, fast);
    EXPECT_EQ(hit_fast.servicedBy, ServiceLevel::L1);
    EXPECT_EQ(hit_fast.completion - 1000,
              smallConfig().l1HitCycles * fast);

    MemorySystem mem2(smallConfig());
    mem2.access(0, 0x100, false, 0, slow);
    const MemResult hit_slow = mem2.access(0, 0x100, false, 1000, slow);
    EXPECT_GT(hit_slow.completion, hit_fast.completion);
}

TEST(MemorySystem, MissGoesToL2ThenDram)
{
    MemorySystem mem(smallConfig());
    const Tick period = clockPeriod(1'700 * freqMHz);
    const MemResult first = mem.access(0, 0x5000, false, 0, period);
    EXPECT_EQ(first.servicedBy, ServiceLevel::Dram);

    // Second access from the *other* CU misses its own L1 but hits L2.
    const MemResult second =
        mem.access(1, 0x5000, false, first.completion, period);
    EXPECT_EQ(second.servicedBy, ServiceLevel::L2);
    EXPECT_LT(second.completion - first.completion,
              first.completion - 0);
}

TEST(MemorySystem, BankContentionQueues)
{
    MemorySystem mem(smallConfig());
    const Tick period = clockPeriod(1'700 * freqMHz);
    // Two simultaneous misses to the same bank (same line address
    // spacing puts them in the same bank when line/banks align).
    const std::uint64_t addr1 = 0x10000;
    const std::uint64_t addr2 = addr1 + 64 * smallConfig().l2Banks;
    const MemResult r1 = mem.access(0, addr1, false, 0, period);
    const MemResult r2 = mem.access(1, addr2, false, 0, period);
    // The second request queues behind the first at the bank.
    EXPECT_GT(r2.completion, r1.completion);
}

TEST(MemorySystem, StoresCompleteAtL2Acceptance)
{
    MemorySystem mem(smallConfig());
    const Tick period = clockPeriod(1'700 * freqMHz);
    const MemResult load = mem.access(0, 0x9000, false, 0, period);
    MemorySystem mem2(smallConfig());
    const MemResult store = mem2.access(0, 0x9000, true, 0, period);
    // Store completion does not wait for DRAM latency.
    EXPECT_LT(store.completion, load.completion);
    EXPECT_EQ(mem2.activity(0).stores, 1u);
}

TEST(MemorySystem, ActivityCountersAndReset)
{
    MemorySystem mem(smallConfig());
    const Tick period = clockPeriod(1'700 * freqMHz);
    mem.access(0, 0x100, false, 0, period);  // L1 miss -> DRAM
    mem.access(0, 0x100, false, 5000000, period); // L1 hit
    EXPECT_EQ(mem.activity(0).l1Misses, 1u);
    EXPECT_EQ(mem.activity(0).l1Hits, 1u);
    mem.resetActivity();
    EXPECT_EQ(mem.activity(0).l1Hits, 0u);
    EXPECT_EQ(mem.activity(0).l1Misses, 0u);
}

TEST(MemorySystem, CopyIsIndependent)
{
    MemorySystem a(smallConfig());
    const Tick period = clockPeriod(1'700 * freqMHz);
    a.access(0, 0x100, false, 0, period);
    MemorySystem b = a;
    // A hit in the copy (state was copied) ...
    const MemResult hit = b.access(0, 0x100, false, 1000, period);
    EXPECT_EQ(hit.servicedBy, ServiceLevel::L1);
    // ... and divergent updates do not leak back.
    b.access(0, 0xFF000, false, 1000, period);
    EXPECT_EQ(a.activity(0).l1Misses, 1u);
    EXPECT_EQ(b.activity(0).l1Misses, 2u);
}

TEST(MemorySystem, HigherFrequencyRaisesContention)
{
    // Issue a burst of misses back to back at two CU clock rates; the
    // completion spread at the bank should reflect queueing, and the
    // faster clock should finish the burst sooner overall but see
    // relatively more queueing (less than proportional speedup).
    auto run_burst = [](Freq freq) {
        MemorySystem mem(smallConfig());
        const Tick period = clockPeriod(freq);
        Tick t = 0;
        Tick last = 0;
        for (int i = 0; i < 64; ++i) {
            const MemResult r = mem.access(
                0, 0x100000 + static_cast<std::uint64_t>(i) * 64, false,
                t, period);
            last = std::max(last, r.completion);
            t += period; // one issue per CU cycle
        }
        return last;
    };
    const Tick fast = run_burst(2'200 * freqMHz);
    const Tick slow = run_burst(1'300 * freqMHz);
    EXPECT_LE(fast, slow);
    // Far from linear scaling: the memory side is fixed-clock.
    EXPECT_GT(static_cast<double>(fast) / static_cast<double>(slow),
              1300.0 / 2200.0);
}

TEST(MemActivity, Accumulates)
{
    MemActivity a;
    a.l1Hits = 1;
    MemActivity b;
    b.l1Hits = 2;
    b.stores = 3;
    a += b;
    EXPECT_EQ(a.l1Hits, 3u);
    EXPECT_EQ(a.stores, 3u);
}

TEST(ServiceLevelNames, AreStable)
{
    EXPECT_STREQ(serviceLevelName(ServiceLevel::L1), "L1");
    EXPECT_STREQ(serviceLevelName(ServiceLevel::L2), "L2");
    EXPECT_STREQ(serviceLevelName(ServiceLevel::Dram), "DRAM");
}

TEST(MemorySystem, StoreWriteCombiningMergesSameLine)
{
    MemorySystem mem(smallConfig());
    const Tick period = clockPeriod(1'700 * freqMHz);
    mem.access(0, 0x4000, true, 0, period);
    // Same line: absorbed by the write buffer in one CU cycle.
    const MemResult second = mem.access(0, 0x4010, true, 1000, period);
    EXPECT_EQ(second.servicedBy, ServiceLevel::L1);
    EXPECT_EQ(second.completion - 1000, period);
    EXPECT_EQ(mem.activity(0).storesCombined, 1u);
    EXPECT_EQ(mem.activity(0).stores, 2u);
}

TEST(MemorySystem, StoreCombiningBreaksOnNewLine)
{
    MemorySystem mem(smallConfig());
    const Tick period = clockPeriod(1'700 * freqMHz);
    mem.access(0, 0x4000, true, 0, period);
    const MemResult other = mem.access(0, 0x8000, true, 1000, period);
    EXPECT_NE(other.servicedBy, ServiceLevel::L1);
    EXPECT_EQ(mem.activity(0).storesCombined, 0u);
}

TEST(MemorySystem, StoreCombiningIsPerCu)
{
    MemorySystem mem(smallConfig());
    const Tick period = clockPeriod(1'700 * freqMHz);
    mem.access(0, 0x4000, true, 0, period);
    // A different CU writing the same line does not combine.
    const MemResult other = mem.access(1, 0x4010, true, 1000, period);
    EXPECT_NE(other.servicedBy, ServiceLevel::L1);
}

TEST(MemorySystem, StoreCombiningCanBeDisabled)
{
    MemConfig cfg = smallConfig();
    cfg.storeCombining = false;
    MemorySystem mem(cfg);
    const Tick period = clockPeriod(1'700 * freqMHz);
    mem.access(0, 0x4000, true, 0, period);
    const MemResult second = mem.access(0, 0x4010, true, 1000, period);
    EXPECT_NE(second.servicedBy, ServiceLevel::L1);
    EXPECT_EQ(mem.activity(0).storesCombined, 0u);
}

using MemoryDeath = ::testing::Test;

TEST(MemoryDeath, RejectsBadGeometry)
{
    EXPECT_FATAL(CacheModel(1000, 48, 4), "power of two");
    EXPECT_FATAL(CacheModel(1000, 64, 4), "multiple");
    MemConfig cfg = smallConfig();
    cfg.l2SizeBytes = 100 * 1024; // not divisible by 4 banks evenly?
    cfg.l2Banks = 3;
    EXPECT_FATAL(MemorySystem{cfg}, "divide evenly");
}

TEST(MemoryDeath, RejectsZeroResources)
{
    MemConfig cfg = smallConfig();
    cfg.dramChannels = 0;
    EXPECT_FATAL(MemorySystem{cfg}, "DRAM channel");
}
