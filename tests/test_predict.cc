/** @file Unit tests for src/predict: PC table & storage accounting. */

#include <gtest/gtest.h>

#include "predict/pc_table.hh"
#include "predict/storage.hh"

using namespace pcstall;
using namespace pcstall::predict;

TEST(PcTable, UpdateThenLookup)
{
    PcSensitivityTable t{PcTableConfig{}};
    t.update(0x1000, 12.0, 40.0);
    const auto v = t.lookup(0x1000);
    ASSERT_TRUE(v.has_value());
    EXPECT_NEAR(v->sensitivity, 12.0, 0.26); // 1 quant step (64/255)
    EXPECT_NEAR(v->level, 40.0, 0.6);        // 1 quant step (256/255)
}

TEST(PcTable, MissOnColdEntry)
{
    PcSensitivityTable t{PcTableConfig{}};
    EXPECT_FALSE(t.lookup(0x2000).has_value());
    EXPECT_DOUBLE_EQ(t.hitRatio(), 0.0);
}

TEST(PcTable, OffsetBitsGroupNearbyPcs)
{
    PcTableConfig cfg;
    cfg.offsetBits = 4; // 16-byte granules = 4 instructions
    PcSensitivityTable t{cfg};
    t.update(0x100, 8.0);
    // Same granule hits; next granule misses.
    EXPECT_TRUE(t.lookup(0x10C).has_value());
    EXPECT_FALSE(t.lookup(0x110).has_value());
}

TEST(PcTable, DirectMappedAliasing)
{
    PcTableConfig cfg;
    cfg.entries = 16;
    cfg.offsetBits = 0;
    PcSensitivityTable t{cfg};
    t.update(0, 5.0);
    t.update(16, 9.0); // aliases entry 0
    const auto v = t.lookup(0);
    ASSERT_TRUE(v.has_value());
    EXPECT_NEAR(v->sensitivity, 9.0, 0.26);
}

TEST(PcTable, QuantizationClampsRange)
{
    PcTableConfig cfg;
    cfg.maxSensitivity = 64.0;
    PcSensitivityTable t{cfg};
    t.update(0, 1000.0);
    EXPECT_NEAR(t.lookup(0)->sensitivity, 64.0, 1e-9);
    t.update(64, -5.0);
    EXPECT_DOUBLE_EQ(t.lookup(64)->sensitivity, 0.0);
}

TEST(PcTable, QuantizationErrorBounded)
{
    PcTableConfig cfg;
    cfg.maxSensitivity = 64.0;
    PcSensitivityTable t{cfg};
    const double step = 64.0 / 255.0;
    for (double s = 0.0; s <= 64.0; s += 3.7) {
        EXPECT_NEAR(t.quantized(s), s, step / 2 + 1e-9);
    }
}

TEST(PcTable, UnquantizedIsExact)
{
    PcTableConfig cfg;
    cfg.quantize = false;
    PcSensitivityTable t{cfg};
    t.update(0, 12.3456789, 7.5);
    EXPECT_DOUBLE_EQ(t.lookup(0)->sensitivity, 12.3456789);
    EXPECT_DOUBLE_EQ(t.lookup(0)->level, 7.5);
}

TEST(PcTable, HitRatioTracksLookups)
{
    PcSensitivityTable t{PcTableConfig{}};
    t.update(0, 1.0);
    t.lookup(0);     // hit
    t.lookup(0x30);  // miss (entry 3, never written)
    EXPECT_DOUBLE_EQ(t.hitRatio(), 0.5);
    EXPECT_EQ(t.lookupCount(), 2u);
    EXPECT_EQ(t.lookupHitCount(), 1u);
}

TEST(PcTable, ResetInvalidates)
{
    PcSensitivityTable t{PcTableConfig{}};
    t.update(0, 1.0);
    t.reset();
    EXPECT_FALSE(t.lookup(0).has_value());
}

TEST(PcTable, BlendedUpdates)
{
    PcTableConfig cfg;
    cfg.quantize = false;
    cfg.updateBlend = 0.5;
    PcSensitivityTable t{cfg};
    t.update(0, 10.0, 100.0);
    t.update(0, 20.0, 200.0);
    EXPECT_DOUBLE_EQ(t.lookup(0)->sensitivity, 15.0);
    EXPECT_DOUBLE_EQ(t.lookup(0)->level, 150.0);
}

TEST(PcTable, StorageMatchesTableI)
{
    // The paper's 128 B table stores sensitivity only; this
    // implementation also stores the level (I0) field by default
    // (see DESIGN.md), doubling the entry array.
    PcTableConfig slope_only;
    slope_only.storeLevel = false;
    EXPECT_EQ(PcSensitivityTable{slope_only}.storageBytes(), 128u);
    EXPECT_EQ(PcSensitivityTable{PcTableConfig{}}.storageBytes(), 256u);
    PcTableConfig wide;
    wide.quantize = false;
    wide.storeLevel = false;
    EXPECT_EQ(PcSensitivityTable{wide}.storageBytes(), 512u);
}

TEST(Storage, PcstallTotalsMatchPaper)
{
    PcTableConfig paper_cfg;
    paper_cfg.storeLevel = false;
    const auto rows = storageBreakdown(paper_cfg, 40, 64);
    // Paper Table I: 128 + 40 + 160 = 328 bytes.
    EXPECT_EQ(designTotal(rows, "PCSTALL"), 328u);
    // With the level field this implementation adds: +128 B.
    EXPECT_EQ(designTotal(storageBreakdown(PcTableConfig{}, 40, 64),
                          "PCSTALL"), 456u);
    EXPECT_EQ(designTotal(rows, "STALL"), 4u);
    // PCSTALL consumes less storage than CRISP (paper's claim).
    EXPECT_LT(designTotal(rows, "PCSTALL"), designTotal(rows, "CRISP"));
    EXPECT_LT(designTotal(rows, "CRIT"), designTotal(rows, "CRISP"));
    EXPECT_LT(designTotal(rows, "LEAD"), designTotal(rows, "CRIT"));
}

/** Parameterized: the table behaves across geometries. */
class PcTableGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(PcTableGeometry, RoundTripsAcrossGeometries)
{
    const auto [entries, offset_bits] = GetParam();
    PcTableConfig cfg;
    cfg.entries = static_cast<std::uint32_t>(entries);
    cfg.offsetBits = static_cast<std::uint32_t>(offset_bits);
    PcSensitivityTable t{cfg};
    for (std::uint64_t pc = 0; pc < 64; ++pc)
        t.update(pc << offset_bits << 2, 7.0);
    std::size_t hits = 0;
    for (std::uint64_t pc = 0; pc < 64; ++pc)
        if (t.lookup(pc << offset_bits << 2).has_value())
            ++hits;
    EXPECT_EQ(hits, 64u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PcTableGeometry,
    ::testing::Combine(::testing::Values(64, 128, 256),
                       ::testing::Values(0, 2, 4, 6)));
