/** @file Unit tests for src/sim: experiment driver & profiler. */

#include <gtest/gtest.h>

#include <memory>

#include "core/pcstall_controller.hh"
#include "isa/kernel_builder.hh"
#include "models/reactive_controller.hh"
#include "sim/experiment.hh"
#include "sim/profiler.hh"
#include "dvfs/hierarchical.hh"
#include "sim/trace_export.hh"

#include <algorithm>
#include <sstream>

using namespace pcstall;
using namespace pcstall::sim;

namespace
{

std::shared_ptr<const isa::Application>
loopApp(bool memory_bound, std::uint32_t trips = 400)
{
    isa::KernelBuilder b(memory_bound ? "mem" : "comp");
    const auto r = b.region("data", 32 << 20);
    b.grid(16, 4);
    b.loop(trips);
    if (memory_bound) {
        b.load(r, isa::AccessPattern::Random);
        b.load(r, isa::AccessPattern::Random);
        b.waitcnt(0);
        b.valu(2, 2);
    } else {
        b.valu(4, 8);
    }
    b.endLoop();
    auto app = std::make_shared<isa::Application>();
    app->name = memory_bound ? "mem_app" : "comp_app";
    app->launches.push_back(b.build());
    app->assignCodeBases();
    return app;
}

RunConfig
smallConfig()
{
    RunConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.gpu.waveSlotsPerCu = 8;
    cfg.maxSimTime = 5 * tickMs;
    cfg.scaled();
    return cfg;
}

} // namespace

TEST(ExperimentDriver, StaticRunCompletes)
{
    ExperimentDriver driver(smallConfig());
    dvfs::StaticController c(driver.nominalState());
    const RunResult r = driver.run(loopApp(false), c);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.execTime, 0);
    EXPECT_GT(r.energy, 0.0);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.epochs, 1u);
    // Static controller never claims predictions.
    EXPECT_DOUBLE_EQ(r.predictionAccuracy, 0.0);
}

TEST(ExperimentDriver, FreqTimeShareSumsToOne)
{
    ExperimentDriver driver(smallConfig());
    dvfs::StaticController c(driver.nominalState());
    const RunResult r = driver.run(loopApp(false), c);
    double sum = 0.0;
    for (double share : r.freqTimeShare)
        sum += share;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_NEAR(r.freqTimeShare[driver.nominalState()], 1.0, 1e-9);
}

TEST(ExperimentDriver, StaticFastBeatsSlowOnComputeTime)
{
    ExperimentDriver driver(smallConfig());
    dvfs::StaticController low(0);
    dvfs::StaticController high(9);
    const RunResult slow = driver.run(loopApp(false), low);
    const RunResult fast = driver.run(loopApp(false), high);
    EXPECT_LT(fast.execTime, slow.execTime);
    // Same total work.
    EXPECT_EQ(fast.instructions, slow.instructions);
}

TEST(ExperimentDriver, MemoryBoundLowFreqSavesEnergy)
{
    ExperimentDriver driver(smallConfig());
    dvfs::StaticController low(0);
    dvfs::StaticController high(9);
    const RunResult le = driver.run(loopApp(true), low);
    const RunResult he = driver.run(loopApp(true), high);
    EXPECT_LT(le.energy, he.energy);
}

TEST(ExperimentDriver, ReactiveControllerRunsAndPredicts)
{
    ExperimentDriver driver(smallConfig());
    models::ReactiveController c(models::EstimationKind::Crisp);
    const RunResult r = driver.run(loopApp(false), c);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.predictionAccuracy, 0.0);
    EXPECT_LE(r.predictionAccuracy, 1.0);
}

TEST(ExperimentDriver, PcstallRunsAndPredictsWell)
{
    ExperimentDriver driver(smallConfig());
    core::PcstallController c(
        core::PcstallConfig::forEpoch(tickUs, 8), 2);
    const RunResult r = driver.run(loopApp(false), c);
    EXPECT_TRUE(r.completed);
    // Steady loop: PCSTALL predictions should be quite accurate.
    EXPECT_GT(r.predictionAccuracy, 0.6);
}

TEST(ExperimentDriver, TraceCollectsPerEpochStates)
{
    RunConfig cfg = smallConfig();
    cfg.collectTrace = true;
    ExperimentDriver driver(cfg);
    dvfs::StaticController c(3);
    const RunResult r = driver.run(loopApp(false), c);
    ASSERT_EQ(r.trace.size(), r.epochs);
    // The first epoch runs at the nominal state (decisions apply from
    // the second epoch on).
    EXPECT_EQ(r.trace.front().domainState[0], driver.nominalState());
    for (std::size_t i = 1; i < r.trace.size(); ++i) {
        ASSERT_EQ(r.trace[i].domainState.size(), 2u);
        EXPECT_EQ(r.trace[i].domainState[0], 3);
    }
}

TEST(ExperimentDriver, WallStopsRunawayRuns)
{
    RunConfig cfg = smallConfig();
    cfg.maxSimTime = 5 * tickUs;
    ExperimentDriver driver(cfg);
    dvfs::StaticController c(driver.nominalState());
    const RunResult r = driver.run(loopApp(false, 100000), c);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.execTime, cfg.maxSimTime);
}

TEST(ExperimentDriver, DomainGranularityWorks)
{
    RunConfig cfg = smallConfig();
    cfg.cusPerDomain = 2;
    ExperimentDriver driver(cfg);
    core::PcstallController c(
        core::PcstallConfig::forEpoch(tickUs, 8), 2);
    const RunResult r = driver.run(loopApp(false), c);
    EXPECT_TRUE(r.completed);
}

TEST(ExperimentDriver, DerivedMetricsConsistent)
{
    ExperimentDriver driver(smallConfig());
    dvfs::StaticController c(driver.nominalState());
    const RunResult r = driver.run(loopApp(false), c);
    EXPECT_NEAR(r.edp(), r.energy * r.seconds(), 1e-12);
    EXPECT_NEAR(r.ed2p(), r.edp() * r.seconds(), 1e-12);
    EXPECT_GT(r.avgPower(), 0.0);
}

TEST(Profiler, CollectsEpochProfiles)
{
    ProfileConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.gpu.waveSlotsPerCu = 8;
    cfg.maxEpochs = 5;
    SensitivityProfiler profiler(cfg);
    const ProfileResult result = profiler.profile(loopApp(false));
    ASSERT_LE(result.epochs.size(), 5u);
    ASSERT_GE(result.epochs.size(), 1u);
    for (const auto &ep : result.epochs) {
        ASSERT_EQ(ep.domains.size(), 2u);
        EXPECT_GT(ep.domains[0].sensitivity, 0.0);
        ASSERT_EQ(ep.domainInstr.size(), 2u);
    }
    const auto series = result.domainSeries(0);
    EXPECT_EQ(series.size(), result.epochs.size());
}

TEST(Profiler, MemoryBoundHasLowerSensitivity)
{
    ProfileConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.gpu.waveSlotsPerCu = 8;
    cfg.maxEpochs = 4;
    SensitivityProfiler profiler(cfg);
    const auto comp = profiler.profile(loopApp(false));
    const auto mem = profiler.profile(loopApp(true));
    ASSERT_FALSE(comp.epochs.empty());
    ASSERT_FALSE(mem.epochs.empty());
    double comp_s = 0, mem_s = 0;
    for (const auto &ep : comp.epochs)
        comp_s += ep.domains[0].sensitivity;
    for (const auto &ep : mem.epochs)
        mem_s += ep.domains[0].sensitivity;
    EXPECT_GT(comp_s / comp.epochs.size(), mem_s / mem.epochs.size());
}

TEST(Profiler, SamplingSkipsEpochs)
{
    ProfileConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.gpu.waveSlotsPerCu = 8;
    cfg.maxEpochs = 3;
    cfg.sampleEvery = 2;
    SensitivityProfiler profiler(cfg);
    const auto result = profiler.profile(loopApp(false, 2000));
    ASSERT_GE(result.epochs.size(), 2u);
    EXPECT_EQ(result.epochs[1].start - result.epochs[0].start,
              2 * tickUs);
}

TEST(ExperimentDriver, TransitionsAreCountedAndCharged)
{
    ExperimentDriver driver(smallConfig());
    // Static controllers never transition.
    dvfs::StaticController st(driver.nominalState());
    const RunResult rs = driver.run(loopApp(false), st);
    EXPECT_EQ(rs.transitions, 0u);
    EXPECT_DOUBLE_EQ(rs.transitionEnergy, 0.0);

    // A reactive controller moving away from nominal transitions at
    // least once, and the energy shows up in the breakdown.
    models::ReactiveController c(models::EstimationKind::Stall);
    const RunResult rr = driver.run(loopApp(true), c);
    EXPECT_GT(rr.transitions, 0u);
    EXPECT_GT(rr.transitionEnergy, 0.0);
    EXPECT_LT(rr.transitionEnergy, rr.energy);
}

TEST(TraceExport, RunTraceCsvRoundTrips)
{
    RunConfig cfg = smallConfig();
    cfg.collectTrace = true;
    ExperimentDriver driver(cfg);
    dvfs::StaticController c(3);
    const RunResult r = driver.run(loopApp(false), c);

    std::ostringstream os;
    writeRunTraceCsv(os, r, driver.table());
    const std::string csv = os.str();
    EXPECT_NE(csv.find("epoch_us,domain,state,freq_ghz,committed"),
              std::string::npos);
    EXPECT_EQ(csv.rfind("# pcstall-run-trace-csv v", 0), 0u);
    // Schema comment + header + epochs * domains rows.
    const std::size_t lines =
        static_cast<std::size_t>(std::count(csv.begin(), csv.end(),
                                            '\n'));
    EXPECT_EQ(lines, 2 + r.trace.size() * 2);
    EXPECT_NE(csv.find(",1.6,"), std::string::npos); // state 3
}

TEST(TraceExport, ProfileCsvHasAllEpochs)
{
    ProfileConfig cfg;
    cfg.gpu.numCus = 2;
    cfg.gpu.waveSlotsPerCu = 8;
    cfg.maxEpochs = 3;
    SensitivityProfiler profiler(cfg);
    const ProfileResult profile = profiler.profile(loopApp(false));

    std::ostringstream os;
    writeProfileCsv(os, profile);
    const std::string csv = os.str();
    EXPECT_EQ(csv.rfind("# pcstall-profile-csv v", 0), 0u);
    const std::size_t lines =
        static_cast<std::size_t>(std::count(csv.begin(), csv.end(),
                                            '\n'));
    EXPECT_EQ(lines, 2 + profile.epochs.size() * 2);

    std::ostringstream wos;
    writeWaveProfileCsv(wos, profile);
    EXPECT_NE(wos.str().find("start_pc_addr"), std::string::npos);
}

TEST(TraceExport, FileWriteFailsGracefully)
{
    RunResult r;
    EXPECT_FALSE(writeRunTraceCsvFile("/nonexistent/dir/x.csv", r,
                                      power::VfTable::paperTable()));
}

TEST(ScaleToCus, ProportionalMemorySystem)
{
    gpu::GpuConfig g;
    power::PowerParams p;
    scaleToCus(g, p, 64);
    EXPECT_EQ(g.mem.l2Banks, 16u);
    EXPECT_EQ(g.mem.dramChannels, 8u);
    EXPECT_EQ(g.mem.l2SizeBytes, 4ull << 20);
    EXPECT_NEAR(p.memStatic, 56.0, 1e-9);

    scaleToCus(g, p, 8);
    EXPECT_EQ(g.mem.l2Banks, 2u);
    EXPECT_EQ(g.mem.dramChannels, 1u);
    EXPECT_EQ(g.mem.l2SizeBytes, 512ull * 1024);
    EXPECT_NEAR(p.memStatic, 7.0, 1e-9);

    // Floors for tiny configurations.
    scaleToCus(g, p, 1);
    EXPECT_GE(g.mem.l2Banks, 2u);
    EXPECT_GE(g.mem.dramChannels, 1u);
    EXPECT_GT(p.memStatic, 0.0);
}

TEST(Hierarchical, CapReducesAveragePowerEndToEnd)
{
    RunConfig cfg = smallConfig();
    ExperimentDriver driver(cfg);
    const auto app = loopApp(false, 3000);

    core::PcstallController free_inner(
        core::PcstallConfig::forEpoch(tickUs, 8), 2);
    const RunResult free_run = driver.run(app, free_inner);
    ASSERT_TRUE(free_run.completed);

    core::PcstallController capped_inner(
        core::PcstallConfig::forEpoch(tickUs, 8), 2);
    dvfs::HierarchicalConfig hcfg;
    hcfg.powerCap = free_run.avgPower() * 0.75;
    hcfg.reviewEpochs = 5;
    dvfs::HierarchicalPowerManager mgr(capped_inner, hcfg);
    const RunResult capped = driver.run(app, mgr);
    ASSERT_TRUE(capped.completed);

    EXPECT_LT(capped.avgPower(), free_run.avgPower());
    EXPECT_GE(capped.execTime, free_run.execTime);
    EXPECT_LT(mgr.ceilingState(), 9u);
}
