/** @file Unit tests for src/dvfs: domains, objectives, controllers. */

#include <gtest/gtest.h>

#include "expect_fatal.hh"

#include "dvfs/controller.hh"
#include "dvfs/domain_map.hh"
#include "dvfs/hierarchical.hh"
#include "dvfs/objective.hh"

using namespace pcstall;
using namespace pcstall::dvfs;

TEST(DomainMap, PerCuDomains)
{
    const DomainMap m(64, 1);
    EXPECT_EQ(m.numDomains(), 64u);
    EXPECT_EQ(m.domainOf(17), 17u);
    EXPECT_EQ(m.firstCu(17), 17u);
}

TEST(DomainMap, GroupedDomains)
{
    const DomainMap m(64, 8);
    EXPECT_EQ(m.numDomains(), 8u);
    EXPECT_EQ(m.domainOf(0), 0u);
    EXPECT_EQ(m.domainOf(7), 0u);
    EXPECT_EQ(m.domainOf(8), 1u);
    EXPECT_EQ(m.firstCu(1), 8u);
}

TEST(DomainMapDeath, RejectsUnevenSplit)
{
    EXPECT_FATAL(DomainMap(64, 7), "divide evenly");
}

namespace
{

/** Compute-bound prediction: instructions scale ~linearly with f. */
std::vector<double>
computeBoundInstr(const power::VfTable &t)
{
    std::vector<double> v;
    for (std::size_t s = 0; s < t.numStates(); ++s)
        v.push_back(1000.0 * freqGHzD(t.state(s).freq) / 1.7);
    return v;
}

/** Memory-bound prediction: instructions barely move with f. */
std::vector<double>
memoryBoundInstr(const power::VfTable &t)
{
    std::vector<double> v;
    for (std::size_t s = 0; s < t.numStates(); ++s)
        v.push_back(500.0 + 2.0 * static_cast<double>(s));
    return v;
}

DomainScoreInputs
inputsFor(const std::vector<double> &instr)
{
    DomainScoreInputs in;
    in.instrAtState = instr;
    in.baselineInstr = instr[4];
    in.baselineActivity.l1Hits = 200;
    in.baselineActivity.l1Misses = 50;
    in.baselineActivity.l2Hits = 30;
    in.baselineActivity.l2Misses = 20;
    in.epochLen = tickUs;
    in.nominalState = 4;
    return in;
}

} // namespace

TEST(Objective, MemoryBoundPicksLowFrequency)
{
    const power::VfTable t = power::VfTable::paperTable();
    const power::PowerModel pm;
    const auto instr = memoryBoundInstr(t);
    const std::size_t edp = chooseState(t, pm, inputsFor(instr),
                                        Objective::Edp);
    const std::size_t ed2p = chooseState(t, pm, inputsFor(instr),
                                         Objective::Ed2p);
    EXPECT_LE(edp, 2u);
    EXPECT_LE(ed2p, 3u);
}

TEST(Objective, ComputeBoundPicksHigherFrequencyForEd2p)
{
    const power::VfTable t = power::VfTable::paperTable();
    const power::PowerModel pm;
    const auto instr = computeBoundInstr(t);
    const std::size_t ed2p = chooseState(t, pm, inputsFor(instr),
                                         Objective::Ed2p);
    const std::size_t edp = chooseState(t, pm, inputsFor(instr),
                                        Objective::Edp);
    EXPECT_GE(ed2p, 5u);
    // EDP weighs energy more -> never above the ED2P choice.
    EXPECT_LE(edp, ed2p);
}

TEST(Objective, Ed3pAtLeastAsAggressiveAsEd2p)
{
    const power::VfTable t = power::VfTable::paperTable();
    const power::PowerModel pm;
    const auto instr = computeBoundInstr(t);
    const std::size_t ed2p = chooseState(t, pm, inputsFor(instr),
                                         Objective::Ed2p);
    const std::size_t ed3p = chooseState(t, pm, inputsFor(instr),
                                         Objective::Ed3p);
    EXPECT_GE(ed3p, ed2p);
}

TEST(Objective, IdleDomainParksAtLowestState)
{
    const power::VfTable t = power::VfTable::paperTable();
    const power::PowerModel pm;
    std::vector<double> zeros(t.numStates(), 0.0);
    DomainScoreInputs in = inputsFor(zeros);
    in.baselineInstr = 0.0;
    EXPECT_EQ(chooseState(t, pm, in, Objective::Ed2p), 0u);
}

TEST(Objective, PerfBoundRespectsDegradationLimit)
{
    const power::VfTable t = power::VfTable::paperTable();
    const power::PowerModel pm;
    const auto instr = computeBoundInstr(t);

    DomainScoreInputs strict = inputsFor(instr);
    strict.perfDegradationLimit = 0.0;
    const std::size_t s0 = chooseState(t, pm, strict,
                                       Objective::EnergyUnderPerfBound);
    // With zero slack, cannot go below nominal throughput.
    EXPECT_GE(instr[s0], instr[4]);

    DomainScoreInputs loose = inputsFor(instr);
    loose.perfDegradationLimit = 0.10;
    const std::size_t s10 = chooseState(t, pm, loose,
                                        Objective::EnergyUnderPerfBound);
    EXPECT_LE(s10, s0);
    EXPECT_GE(instr[s10], instr[4] * 0.9 - 1e-9);
}

TEST(Objective, PerfBoundMemoryBoundDropsToBottom)
{
    const power::VfTable t = power::VfTable::paperTable();
    const power::PowerModel pm;
    const auto instr = memoryBoundInstr(t);
    DomainScoreInputs in = inputsFor(instr);
    in.perfDegradationLimit = 0.05;
    const std::size_t s = chooseState(t, pm, in,
                                      Objective::EnergyUnderPerfBound);
    EXPECT_LE(s, 1u);
}

TEST(Objective, DomainEnergyMonotoneInState)
{
    const power::VfTable t = power::VfTable::paperTable();
    const power::PowerModel pm;
    // With *flat* instruction counts, raising f strictly raises energy.
    std::vector<double> flat(t.numStates(), 800.0);
    const DomainScoreInputs in = inputsFor(flat);
    double prev = 0.0;
    for (std::size_t s = 0; s < t.numStates(); ++s) {
        const double e = domainEpochEnergy(t, pm, in, s);
        EXPECT_GT(e, prev);
        prev = e;
    }
}

TEST(Objective, Names)
{
    EXPECT_STREQ(objectiveName(Objective::Edp), "EDP");
    EXPECT_STREQ(objectiveName(Objective::Ed2p), "ED2P");
    EXPECT_STREQ(objectiveName(Objective::EnergyUnderPerfBound),
                 "Energy@PerfBound");
}

TEST(StaticController, AlwaysReturnsItsState)
{
    const power::VfTable t = power::VfTable::paperTable();
    const power::PowerModel pm;
    const DomainMap domains(4, 1);
    gpu::EpochRecord record;
    record.cus.resize(4);
    std::vector<gpu::WaveSnapshot> snaps;
    EpochContext ctx{record, snaps, domains, t, pm, tickUs, 45.0,
                     Objective::Ed2p, 0.05, 4, nullptr, nullptr};
    StaticController c(7);
    const auto decisions = c.decide(ctx);
    ASSERT_EQ(decisions.size(), 4u);
    for (const auto &d : decisions) {
        EXPECT_EQ(d.state, 7u);
        EXPECT_LT(d.predictedInstr, 0.0); // no prediction claimed
    }
}

TEST(Objective, StaticShareRaisesChosenState)
{
    // A frequency-independent power floor makes finishing work faster
    // worthwhile: with a large static share the optimum moves up.
    const power::VfTable t = power::VfTable::paperTable();
    const power::PowerModel pm;
    // Mildly sensitive workload.
    std::vector<double> instr;
    for (std::size_t s = 0; s < t.numStates(); ++s)
        instr.push_back(1000.0 + 150.0 * static_cast<double>(s) / 9.0);

    DomainScoreInputs without = inputsFor(instr);
    without.staticShare = 0.0;
    DomainScoreInputs with = inputsFor(instr);
    with.staticShare = 10.0; // 10 W riding on this domain's clock
    EXPECT_GE(chooseState(t, pm, with, Objective::Ed2p),
              chooseState(t, pm, without, Objective::Ed2p));
}

TEST(Objective, DomainEnergyScalesActivityWithThroughput)
{
    const power::VfTable t = power::VfTable::paperTable();
    const power::PowerModel pm;
    // Compute-bound: twice the instructions at the top state implies
    // roughly twice the attributed memory-side dynamic energy.
    std::vector<double> flat(t.numStates(), 1000.0);
    std::vector<double> doubled(t.numStates(), 2000.0);
    DomainScoreInputs a = inputsFor(flat);
    DomainScoreInputs b = inputsFor(doubled);
    b.baselineInstr = a.baselineInstr; // same measured baseline
    const double ea = domainEpochEnergy(t, pm, a, 9);
    const double eb = domainEpochEnergy(t, pm, b, 9);
    EXPECT_GT(eb, ea);
}

TEST(Hierarchical, ConfigValidation)
{
    StaticController inner(4);
    HierarchicalConfig bad;
    bad.powerCap = 0.0;
    EXPECT_FATAL(HierarchicalPowerManager(inner, bad), "power cap");
}

TEST(Hierarchical, ClampsDecisionsToCeiling)
{
    const power::VfTable t = power::VfTable::paperTable();
    const power::PowerModel pm;
    const DomainMap domains(2, 1);

    // A hot elapsed epoch so the manager narrows after review.
    gpu::EpochRecord record;
    record.start = 0;
    record.end = tickUs;
    record.cus.resize(2);
    for (auto &cu : record.cus) {
        cu.committed = 8000;
        cu.freq = 2'200 * freqMHz;
        cu.mem.l1Hits = 2000;
        cu.mem.l1Misses = 500;
        cu.mem.l2Misses = 400;
    }
    std::vector<gpu::WaveSnapshot> snaps;
    EpochContext ctx{record, snaps, domains, t, pm, tickUs, 45.0,
                     Objective::Ed2p, 0.05, 4, nullptr, nullptr};

    StaticController inner(9); // always wants the top state
    HierarchicalConfig cfg;
    cfg.powerCap = 1.0; // absurdly low: must narrow every review
    cfg.reviewEpochs = 1;
    HierarchicalPowerManager mgr(inner, cfg);

    // Each decide() reviews once and lowers the ceiling by one.
    for (int i = 0; i < 4; ++i)
        mgr.decide(ctx);
    EXPECT_LE(mgr.ceilingState(), 5u);
    const auto decisions = mgr.decide(ctx);
    for (const auto &d : decisions)
        EXPECT_LE(d.state, mgr.ceilingState());
    EXPECT_GT(mgr.lastWindowPower(), cfg.powerCap);
}

TEST(Hierarchical, WidensUnderGenerousCap)
{
    const power::VfTable t = power::VfTable::paperTable();
    const power::PowerModel pm;
    const DomainMap domains(1, 1);
    gpu::EpochRecord record;
    record.start = 0;
    record.end = tickUs;
    record.cus.resize(1);
    record.cus[0].committed = 10;
    record.cus[0].freq = 1'300 * freqMHz;
    std::vector<gpu::WaveSnapshot> snaps;
    EpochContext ctx{record, snaps, domains, t, pm, tickUs, 45.0,
                     Objective::Ed2p, 0.05, 4, nullptr, nullptr};

    StaticController inner(9);
    HierarchicalConfig cfg;
    cfg.powerCap = 100000.0; // never binding
    cfg.reviewEpochs = 1;
    HierarchicalPowerManager mgr(inner, cfg);
    for (int i = 0; i < 3; ++i) {
        const auto decisions = mgr.decide(ctx);
        EXPECT_EQ(decisions[0].state, 9u); // ceiling stays at the top
    }
}

TEST(Objective, MarginalFallsBackWhenCold)
{
    const power::VfTable t = power::VfTable::paperTable();
    const power::PowerModel pm;
    const auto instr = computeBoundInstr(t);
    DomainScoreInputs in = inputsFor(instr); // averages unset
    EXPECT_EQ(chooseState(t, pm, in, Objective::MarginalEd2p),
              chooseState(t, pm, in, Objective::Ed2p));
}

TEST(Objective, MarginalPricesTimeWithAveragePower)
{
    const power::VfTable t = power::VfTable::paperTable();
    const power::PowerModel pm;
    const auto instr = computeBoundInstr(t);

    DomainScoreInputs cheap_time = inputsFor(instr);
    cheap_time.avgChipPower = 0.5; // almost nothing rides on time
    cheap_time.avgInstr = 1000.0;
    DomainScoreInputs dear_time = inputsFor(instr);
    dear_time.avgChipPower = 60.0; // a hot chip: time is expensive
    dear_time.avgInstr = 1000.0;

    const std::size_t slow = chooseState(t, pm, cheap_time,
                                         Objective::MarginalEd2p);
    const std::size_t fast = chooseState(t, pm, dear_time,
                                         Objective::MarginalEd2p);
    EXPECT_GE(fast, slow);
    EXPECT_EQ(fast, 9u); // 60 W of average power: race to finish
}

TEST(Objective, MarginalEd2pPricesTimeTwiceEdp)
{
    const power::VfTable t = power::VfTable::paperTable();
    const power::PowerModel pm;
    // Mild sensitivity: the doubled time price of ED2P should never
    // pick a lower state than EDP.
    std::vector<double> instr;
    for (std::size_t s = 0; s < t.numStates(); ++s)
        instr.push_back(1000.0 + 40.0 * static_cast<double>(s));
    DomainScoreInputs in = inputsFor(instr);
    in.avgChipPower = 6.0;
    in.avgInstr = 1100.0;
    EXPECT_GE(chooseState(t, pm, in, Objective::MarginalEd2p),
              chooseState(t, pm, in, Objective::MarginalEdp));
}

TEST(Objective, MarginalNames)
{
    EXPECT_STREQ(objectiveName(Objective::MarginalEdp),
                 "EDP(marginal)");
    EXPECT_STREQ(objectiveName(Objective::MarginalEd2p),
                 "ED2P(marginal)");
}
