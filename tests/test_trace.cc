/**
 * @file
 * Tests of the epoch-trace subsystem (src/trace): binary wire format
 * round-trips, strict rejection of truncated/corrupt files, PC-table
 * snapshot/restore across quantization boundaries, and the headline
 * property - capture-then-replay reproduces the live run's decisions
 * and metrics bit-for-bit across workloads and controller kinds.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/pcstall_controller.hh"
#include "dvfs/hierarchical.hh"
#include "models/reactive_controller.hh"
#include "oracle/oracle_controllers.hh"
#include "sim/experiment.hh"
#include "sim/trace_export.hh"
#include "trace/format.hh"
#include "trace/replay.hh"
#include "trace/snapshot.hh"
#include "workloads/workloads.hh"

using namespace pcstall;

namespace
{

sim::RunConfig
testConfig(std::uint32_t cus = 2)
{
    sim::RunConfig cfg;
    cfg.gpu.numCus = cus;
    cfg.maxSimTime = 2 * tickMs;
    cfg.scaled();
    return cfg;
}

std::shared_ptr<const isa::Application>
app(const std::string &name, std::uint32_t cus = 2, double scale = 0.2)
{
    workloads::WorkloadParams p;
    p.numCus = cus;
    p.scale = scale;
    return std::make_shared<const isa::Application>(
        workloads::makeWorkload(name, p));
}

/** Fresh unique path under gtest's per-run temp directory. */
std::string
tempTracePath(const std::string &stem)
{
    // The pid keeps concurrent test processes (ctest -j) from
    // colliding on the same temp file names.
    static int counter = 0;
    return ::testing::TempDir() + "pcstall_" + stem + "_" +
           std::to_string(static_cast<long>(::getpid())) + "_" +
           std::to_string(counter++) + ".pctrace";
}

core::PcstallController
makePcstall(const sim::RunConfig &cfg)
{
    return core::PcstallController(
        core::PcstallConfig::forEpoch(cfg.epochLen,
                                      cfg.gpu.waveSlotsPerCu),
        cfg.gpu.numCus);
}

struct Captured
{
    sim::RunResult live;
    std::string path;
};

/** Run @p controller live while streaming the trace to a temp file. */
Captured
capture(const sim::RunConfig &cfg, const std::string &workload,
        dvfs::DvfsController &controller,
        const trace::HierarchicalMeta &hier = {},
        trace::TraceCapture::SnapshotProvider provider = nullptr)
{
    sim::ExperimentDriver driver(cfg);
    const auto a = app(workload, cfg.gpu.numCus);
    Captured out;
    out.path = tempTracePath(workload);
    trace::TraceWriter writer(
        out.path, trace::makeTraceMeta(cfg, driver.table(), workload,
                                       controller, hier));
    EXPECT_TRUE(writer.ok());
    trace::TraceCapture cap(writer);
    if (provider)
        cap.setSnapshotProvider(std::move(provider));
    out.live = driver.run(a, controller, &cap);
    EXPECT_TRUE(cap.finished());
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Wire-format round trips.
// ---------------------------------------------------------------------

TEST(TraceFormat, CaptureRoundTripsThroughFile)
{
    const auto cfg = testConfig();
    models::ReactiveController stall(models::EstimationKind::Stall);
    const Captured cap = capture(cfg, "comd", stall);
    ASSERT_TRUE(cap.live.completed);

    const trace::TraceReadResult read =
        trace::readTraceFile(cap.path);
    ASSERT_TRUE(read.ok()) << read.error;
    const trace::TraceData &data = *read.trace;

    EXPECT_EQ(data.meta.workload, "comd");
    EXPECT_EQ(data.meta.controller, stall.name());
    EXPECT_EQ(data.meta.numCus, cfg.gpu.numCus);
    EXPECT_EQ(data.meta.epochLen, cfg.epochLen);
    EXPECT_EQ(data.meta.nominalFreq, cfg.nominalFreq);
    EXPECT_FALSE(data.meta.vfStates.empty());
    EXPECT_FALSE(data.frames.empty());
    EXPECT_EQ(data.trailer.frameCount, data.frames.size());
    EXPECT_TRUE(data.trailer.completed);
    EXPECT_EQ(data.trailer.totalCommitted, cap.live.instructions);
    EXPECT_EQ(data.trailer.lastCommitTick, cap.live.execTime);

    // Frames are in time order with per-domain decisions (except the
    // final application-finished frame).
    Tick prev_end = 0;
    for (const trace::EpochFrame &f : data.frames) {
        EXPECT_LE(prev_end, f.end);
        prev_end = f.end;
        if (!f.done) {
            EXPECT_EQ(f.decisions.size(), data.meta.numDomains());
        }
        EXPECT_EQ(f.record.cus.size(), cfg.gpu.numCus);
    }
    std::remove(cap.path.c_str());
}

TEST(TraceFormat, SweepWaveListMayExceedSlotCapacity)
{
    // Sweep sensitivities are keyed on (cu, slot, startPcAddr), so
    // wave turnover inside one epoch can legitimately produce more
    // entries than there are wave slots; the decoder must not reject
    // such frames as corrupt (it used to cap at cus x slots).
    const auto cfg = testConfig();
    models::ReactiveController stall(models::EstimationKind::Stall);
    const std::string path = tempTracePath("sweepwaves");
    const trace::TraceMeta meta = trace::makeTraceMeta(
        cfg, power::VfTable::paperTable(), "comd", stall);
    trace::TraceWriter writer(path, meta);
    ASSERT_TRUE(writer.ok());

    trace::EpochFrame f;
    f.start = 0;
    f.end = cfg.epochLen;
    f.accountedEnd = cfg.epochLen;
    f.record.cus.resize(meta.numCus);
    f.decisions.resize(meta.numDomains());
    f.hasSweep = true;
    f.sweep.domainInstr.assign(
        meta.numDomains(),
        std::vector<double>(meta.vfStates.size(), 1.0));
    const std::size_t capacity =
        std::size_t{meta.numCus} * meta.waveSlotsPerCu;
    for (std::size_t i = 0; i < capacity + 7; ++i) {
        dvfs::AccurateEstimates::WaveSens w;
        w.cu = static_cast<std::uint32_t>(i % meta.numCus);
        w.slot = 0;
        w.startPcAddr = 16 * i;
        f.sweep.waves.push_back(w);
    }
    writer.writeFrame(f);
    trace::TraceTrailer trailer;
    trailer.frameCount = 1;
    trailer.completed = true;
    writer.finish(trailer);

    const trace::TraceReadResult read = trace::readTraceFile(path);
    ASSERT_TRUE(read.ok()) << read.error;
    ASSERT_EQ(read.trace->frames.size(), 1u);
    EXPECT_EQ(read.trace->frames[0].sweep.waves.size(), capacity + 7);
    std::remove(path.c_str());
}

TEST(TraceFormat, RunConfigImageSurvivesRoundTrip)
{
    auto cfg = testConfig();
    cfg.faults.telemetry.enabled = true;
    cfg.faults.telemetry.sigma = 0.01;
    cfg.faults.seed = 1234567;
    cfg.watchdogFallback = true;
    models::ReactiveController stall(models::EstimationKind::Stall);
    const Captured cap = capture(cfg, "hacc", stall);

    const auto read = trace::readTraceFile(cap.path);
    ASSERT_TRUE(read.ok()) << read.error;

    const sim::RunConfig restored =
        trace::runConfigFromMeta(read.trace->meta);
    EXPECT_EQ(restored.gpu.numCus, cfg.gpu.numCus);
    EXPECT_EQ(restored.epochLen, cfg.epochLen);
    EXPECT_EQ(restored.maxSimTime, cfg.maxSimTime);
    EXPECT_EQ(restored.faults.seed, cfg.faults.seed);
    EXPECT_TRUE(restored.faults.telemetry.enabled);
    EXPECT_DOUBLE_EQ(restored.faults.telemetry.sigma,
                     cfg.faults.telemetry.sigma);
    EXPECT_EQ(restored.watchdogFallback, cfg.watchdogFallback);

    const power::VfTable table =
        trace::vfTableFromMeta(read.trace->meta);
    const power::VfTable live_table =
        sim::ExperimentDriver(cfg).table();
    ASSERT_EQ(table.numStates(), live_table.numStates());
    for (std::size_t s = 0; s < table.numStates(); ++s) {
        EXPECT_EQ(table.state(s).freq, live_table.state(s).freq);
        EXPECT_DOUBLE_EQ(table.state(s).voltage,
                         live_table.state(s).voltage);
    }
    std::remove(cap.path.c_str());
}

// ---------------------------------------------------------------------
// Strict validation: truncated / corrupt / garbage files.
// ---------------------------------------------------------------------

class TraceValidation : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto cfg = testConfig();
        models::ReactiveController stall(
            models::EstimationKind::Stall);
        path = capture(cfg, "comd", stall).path;
        std::ifstream is(path, std::ios::binary);
        ASSERT_TRUE(is);
        std::ostringstream buf;
        buf << is.rdbuf();
        bytes = buf.str();
        ASSERT_GT(bytes.size(), 128u);
    }

    void TearDown() override { std::remove(path.c_str()); }

    void rewrite(const std::string &contents)
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << contents;
    }

    std::string path;
    std::string bytes;
};

TEST_F(TraceValidation, TruncatedFileRejected)
{
    for (const std::size_t keep :
         {bytes.size() / 2, bytes.size() - 1, std::size_t{16},
          std::size_t{3}}) {
        rewrite(bytes.substr(0, keep));
        const auto read = trace::readTraceFile(path);
        EXPECT_FALSE(read.ok()) << "kept " << keep << " bytes";
        EXPECT_FALSE(read.error.empty());
    }
}

TEST_F(TraceValidation, FlippedByteRejected)
{
    // Flip one byte at several positions: structural validation or the
    // whole-file checksum must catch every single one.
    for (const std::size_t at :
         {std::size_t{10}, bytes.size() / 4, bytes.size() / 2,
          bytes.size() - 20}) {
        std::string corrupt = bytes;
        corrupt[at] = static_cast<char>(corrupt[at] ^ 0x5a);
        rewrite(corrupt);
        const auto read = trace::readTraceFile(path);
        EXPECT_FALSE(read.ok()) << "flipped byte " << at;
    }
}

TEST_F(TraceValidation, WrongMagicAndVersionRejected)
{
    std::string wrong = bytes;
    wrong[0] = 'X';
    rewrite(wrong);
    EXPECT_FALSE(trace::readTraceFile(path).ok());

    wrong = bytes;
    wrong[4] = static_cast<char>(0xff); // version little-endian lo
    rewrite(wrong);
    EXPECT_FALSE(trace::readTraceFile(path).ok());
}

TEST_F(TraceValidation, TrailingGarbageRejected)
{
    rewrite(bytes + "extra");
    EXPECT_FALSE(trace::readTraceFile(path).ok());
}

TEST(TraceFormat, MissingFileRejected)
{
    const auto read =
        trace::readTraceFile(::testing::TempDir() + "no_such.pctrace");
    EXPECT_FALSE(read.ok());
    EXPECT_FALSE(read.error.empty());
}

// ---------------------------------------------------------------------
// PC-table snapshot / restore.
// ---------------------------------------------------------------------

TEST(PcSnapshot, RoundTripsAcrossQuantizationBoundaries)
{
    predict::PcTableConfig cfg;
    std::vector<predict::PcSensitivityTable> tables;
    tables.emplace_back(cfg);
    tables.emplace_back(cfg);

    // Exercise the quantization grid edges: zero, one step, mid-range,
    // the max representable value, and values clamped from above.
    const double step = cfg.maxSensitivity / 255.0;
    tables[0].update(0x00, 0.0, 0.0);
    tables[0].update(0x10, step, cfg.maxLevel / 255.0);
    tables[0].update(0x20, cfg.maxSensitivity / 2.0, 17.0);
    tables[0].update(0x30, cfg.maxSensitivity, cfg.maxLevel);
    tables[0].update(0x40, cfg.maxSensitivity * 3.0,
                     cfg.maxLevel * 2.0);
    tables[1].update(0x50, 1.25, 3.5);

    const trace::PcTableSnapshot snap =
        trace::snapshotPcTables(tables);
    ASSERT_EQ(snap.tables.size(), 2u);

    // Encode -> decode preserves the image exactly.
    trace::PcTableSnapshot decoded;
    const std::string err =
        trace::decodePcSnapshot(trace::encodePcSnapshot(snap),
                                decoded);
    ASSERT_TRUE(err.empty()) << err;

    // Restore into identically-configured fresh tables: the stored
    // values are already on the quantization grid, so re-quantizing
    // them must be the identity.
    std::vector<predict::PcSensitivityTable> fresh;
    fresh.emplace_back(cfg);
    fresh.emplace_back(cfg);
    const std::string restore_err =
        trace::restorePcTables(decoded, fresh);
    ASSERT_TRUE(restore_err.empty()) << restore_err;

    for (std::size_t t = 0; t < tables.size(); ++t) {
        const auto want = tables[t].exportEntries();
        const auto got = fresh[t].exportEntries();
        ASSERT_EQ(want.size(), got.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(want[i].valid, got[i].valid);
            EXPECT_DOUBLE_EQ(want[i].sensitivity,
                             got[i].sensitivity);
            EXPECT_DOUBLE_EQ(want[i].level, got[i].level);
        }
    }
}

TEST(PcSnapshot, GeometryMismatchRefusesRestore)
{
    predict::PcTableConfig cfg;
    std::vector<predict::PcSensitivityTable> one;
    one.emplace_back(cfg);
    one[0].update(0x10, 2.0, 4.0);
    const auto snap = trace::snapshotPcTables(one);

    // Wrong instance count.
    std::vector<predict::PcSensitivityTable> two;
    two.emplace_back(cfg);
    two.emplace_back(cfg);
    EXPECT_FALSE(trace::restorePcTables(snap, two).empty());

    // Wrong quantization parameters.
    predict::PcTableConfig other = cfg;
    other.maxSensitivity = cfg.maxSensitivity * 2.0;
    std::vector<predict::PcSensitivityTable> mis;
    mis.emplace_back(other);
    EXPECT_FALSE(trace::restorePcTables(snap, mis).empty());
}

TEST(PcSnapshot, StandaloneFileRoundTripsAndRejectsCorruption)
{
    predict::PcTableConfig cfg;
    std::vector<predict::PcSensitivityTable> tables;
    tables.emplace_back(cfg);
    tables[0].update(0x80, 5.0, 9.0);
    const auto snap = trace::snapshotPcTables(tables);

    const std::string path =
        ::testing::TempDir() + "pcstall_snapshot_test.pcsnap";
    ASSERT_TRUE(trace::writePcSnapshotFile(path, snap));

    const auto read = trace::readPcSnapshotFile(path);
    ASSERT_TRUE(read.ok()) << read.error;
    EXPECT_EQ(read.snapshot->tables.size(), 1u);

    // Corrupt one byte: checksum must reject it.
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    is.close();
    std::string bytes = buf.str();
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x5a);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
    os.close();
    EXPECT_FALSE(trace::readPcSnapshotFile(path).ok());
    std::remove(path.c_str());
}

TEST(PcSnapshot, EmbeddedInTraceAndWarmStartsController)
{
    const auto cfg = testConfig();
    auto pc = makePcstall(cfg);
    const Captured cap =
        capture(cfg, "comd", pc, {}, [&pc] {
            return trace::snapshotPcTables(pc.pcTables());
        });

    const auto read = trace::readTraceFile(cap.path);
    ASSERT_TRUE(read.ok()) << read.error;
    ASSERT_FALSE(read.trace->pcSnapshot.empty());

    auto fresh = makePcstall(cfg);
    const std::string err =
        trace::restorePcTables(read.trace->pcSnapshot,
                               fresh.pcTables());
    EXPECT_TRUE(err.empty()) << err;

    // The warm-started tables match the trained ones entry for entry.
    for (std::size_t t = 0; t < pc.pcTables().size(); ++t) {
        const auto want = pc.pcTables()[t].exportEntries();
        const auto got = fresh.pcTables()[t].exportEntries();
        ASSERT_EQ(want.size(), got.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(want[i].valid, got[i].valid);
            EXPECT_DOUBLE_EQ(want[i].sensitivity,
                             got[i].sensitivity);
        }
    }
    std::remove(cap.path.c_str());
}

// ---------------------------------------------------------------------
// Capture-vs-replay determinism (the subsystem's headline property).
// ---------------------------------------------------------------------

/** workload x controller-kind grid per the acceptance criteria. */
class ReplayDeterminism
    : public ::testing::TestWithParam<
          std::tuple<const char *, const char *>>
{};

TEST_P(ReplayDeterminism, ReplayReproducesLiveRunExactly)
{
    const std::string workload = std::get<0>(GetParam());
    const std::string kind = std::get<1>(GetParam());
    const auto cfg = testConfig();

    // Build the live controller (and its replay twin, cold).
    struct Built
    {
        std::unique_ptr<core::PcstallController> inner;
        std::unique_ptr<dvfs::DvfsController> controller;
        trace::HierarchicalMeta hier;
        dvfs::DvfsController &use()
        {
            return controller ? *controller : *inner;
        }
    };
    auto build = [&] {
        Built b;
        if (kind == "STALL") {
            b.controller =
                std::make_unique<models::ReactiveController>(
                    models::EstimationKind::Stall);
            return b;
        }
        b.inner = std::make_unique<core::PcstallController>(
            makePcstall(cfg));
        if (kind == "PCSTALL")
            return b;
        // PCSTALL under the hierarchical power cap.
        dvfs::HierarchicalConfig hcfg;
        hcfg.powerCap = 40.0;
        hcfg.reviewEpochs = 10;
        b.hier.enabled = true;
        b.hier.powerCap = hcfg.powerCap;
        b.hier.reviewEpochs = hcfg.reviewEpochs;
        b.hier.widenBelow = hcfg.widenBelow;
        b.controller =
            std::make_unique<dvfs::HierarchicalPowerManager>(
                *b.inner, hcfg);
        return b;
    };

    Built live = build();
    const Captured cap = capture(cfg, workload, live.use(), live.hier);

    const auto read = trace::readTraceFile(cap.path);
    ASSERT_TRUE(read.ok()) << read.error;

    Built twin = build();
    trace::ReplayDriver replay(*read.trace);
    const trace::ReplayOutcome outcome = replay.run(twin.use());

    ASSERT_TRUE(outcome.ok()) << outcome.error;
    EXPECT_TRUE(outcome.deterministic())
        << outcome.decisionMismatches << " mismatches; first: "
        << outcome.firstMismatch;

    // Metric reproduction is bit-for-bit, not approximate.
    EXPECT_EQ(outcome.result.execTime, cap.live.execTime);
    EXPECT_EQ(outcome.result.instructions, cap.live.instructions);
    EXPECT_DOUBLE_EQ(outcome.result.energy, cap.live.energy);
    EXPECT_DOUBLE_EQ(outcome.result.ed2p(), cap.live.ed2p());
    EXPECT_EQ(outcome.result.completed, cap.live.completed);
    EXPECT_EQ(outcome.result.transitions, cap.live.transitions);
    std::remove(cap.path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ReplayDeterminism,
    ::testing::Combine(::testing::Values("comd", "hacc", "xsbench"),
                       ::testing::Values("STALL", "PCSTALL",
                                         "PCSTALL+CAP")),
    [](const auto &info) {
        std::string n = std::string(std::get<0>(info.param)) + "_" +
                        std::get<1>(info.param);
        for (char &c : n)
            if (c == '+')
                c = 'x';
        return n;
    });

TEST(Replay, FaultInjectedRunReplaysDeterministically)
{
    auto cfg = testConfig();
    cfg.faults.telemetry.enabled = true;
    cfg.faults.telemetry.sigma = 0.02;
    cfg.faults.dvfs.enabled = true;
    cfg.faults.dvfs.transitionFailProb = 0.05;
    cfg.faults.seed = 99;
    auto pc = makePcstall(cfg);
    const Captured cap = capture(cfg, "comd", pc);

    const auto read = trace::readTraceFile(cap.path);
    ASSERT_TRUE(read.ok()) << read.error;

    auto fresh = makePcstall(cfg);
    trace::ReplayDriver replay(*read.trace);
    const auto outcome = replay.run(fresh);
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    EXPECT_TRUE(outcome.deterministic()) << outcome.firstMismatch;
    EXPECT_EQ(outcome.result.execTime, cap.live.execTime);
    EXPECT_DOUBLE_EQ(outcome.result.energy, cap.live.energy);
    std::remove(cap.path.c_str());
}

TEST(Replay, CrossControllerReplayAnswersWhatIf)
{
    // Capture under STALL, replay PCSTALL on the same epochs: not a
    // verification run (different policy), but it must complete and
    // produce sane metrics.
    const auto cfg = testConfig();
    models::ReactiveController stall(models::EstimationKind::Stall);
    const Captured cap = capture(cfg, "hacc", stall);

    const auto read = trace::readTraceFile(cap.path);
    ASSERT_TRUE(read.ok()) << read.error;

    auto pc = makePcstall(cfg);
    trace::ReplayDriver replay(*read.trace);
    trace::ReplayOptions opts;
    opts.verifyDecisions = false;
    const auto outcome = replay.run(pc, opts);
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    EXPECT_GT(outcome.result.instructions, 0u);
    EXPECT_GT(outcome.result.energy, 0.0);
    std::remove(cap.path.c_str());
}

TEST(Replay, SweepControllerOnSweeplessTraceFailsCleanly)
{
    const auto cfg = testConfig();
    models::ReactiveController stall(models::EstimationKind::Stall);
    const Captured cap = capture(cfg, "comd", stall);

    const auto read = trace::readTraceFile(cap.path);
    ASSERT_TRUE(read.ok()) << read.error;

    oracle::OracleController oracle_c; // needs Upcoming sweeps
    trace::ReplayDriver replay(*read.trace);
    const auto outcome = replay.run(oracle_c);
    EXPECT_FALSE(outcome.ok());
    EXPECT_FALSE(outcome.error.empty());
    std::remove(cap.path.c_str());
}

// ---------------------------------------------------------------------
// CSV export hygiene (schema comment + separator escaping).
// ---------------------------------------------------------------------

TEST(TraceCsv, RunTraceCsvCarriesSchemaComment)
{
    auto cfg = testConfig();
    cfg.collectTrace = true;
    sim::ExperimentDriver driver(cfg);
    const auto a = app("comd");
    models::ReactiveController stall(models::EstimationKind::Stall);
    const sim::RunResult r = driver.run(a, stall);
    ASSERT_FALSE(r.trace.empty());

    std::ostringstream os;
    sim::writeRunTraceCsv(os, r, driver.table());
    std::istringstream is(os.str());
    std::string first, second;
    std::getline(is, first);
    std::getline(is, second);
    EXPECT_EQ(first, "# pcstall-run-trace-csv v" +
                         std::to_string(sim::traceCsvSchemaVersion));
    EXPECT_EQ(second, "epoch_us,domain,state,freq_ghz,committed");
}

TEST(TraceCsv, EscapeQuotesSeparatorsAndQuotes)
{
    EXPECT_EQ(sim::csvEscape("plain"), "plain");
    EXPECT_EQ(sim::csvEscape("12.5"), "12.5");
    EXPECT_EQ(sim::csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(sim::csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(sim::csvEscape("line\nbreak"), "\"line\nbreak\"");
    EXPECT_EQ(sim::csvEscape(""), "");
}
