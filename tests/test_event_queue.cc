/**
 * @file
 * TickBucketQueue (the flat time-bucketed event queue behind
 * GpuChip::runUntil) against a reference ordered set: the contract is
 * strictly ascending (tick, id) pop order, one live entry per id,
 * under monotone scheduling. The randomized cross-check drives both
 * structures through the same operation stream, including far-future
 * times that park in the overflow mask and migrate back into the ring
 * as the cursor advances.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "gpu/event_queue.hh"

using namespace pcstall;
using gpu::TickBucketQueue;

namespace
{

/** Reference model: ordered (tick, id) pairs, one entry per id. */
class ReferenceQueue
{
  public:
    void
    reset(std::uint32_t n)
    {
        entries_.clear();
        when_.assign(n, -1);
    }

    void
    schedule(std::uint32_t id, Tick t)
    {
        if (when_[id] >= 0)
            entries_.erase({when_[id], id});
        when_[id] = t;
        entries_.insert({t, id});
    }

    bool
    popMin(Tick &t_out, std::uint32_t &id_out)
    {
        if (entries_.empty())
            return false;
        const auto [t, id] = *entries_.begin();
        entries_.erase(entries_.begin());
        when_[id] = -1;
        t_out = t;
        id_out = id;
        return true;
    }

    bool empty() const { return entries_.empty(); }

  private:
    std::set<std::pair<Tick, std::uint32_t>> entries_;
    std::vector<Tick> when_;
};

} // namespace

TEST(TickBucketQueue, PopsInAscendingTickIdOrder)
{
    TickBucketQueue q;
    q.reset(8, 0);
    // Same tick for several ids: pop order must break ties by id.
    q.schedule(5, 100);
    q.schedule(1, 100);
    q.schedule(3, 100);
    q.schedule(0, 50);
    q.schedule(7, 2000);

    Tick t = 0;
    std::uint32_t id = 0;
    ASSERT_TRUE(q.popMin(t, id));
    EXPECT_EQ(t, 50);
    EXPECT_EQ(id, 0u);
    ASSERT_TRUE(q.popMin(t, id));
    EXPECT_EQ(t, 100);
    EXPECT_EQ(id, 1u);
    ASSERT_TRUE(q.popMin(t, id));
    EXPECT_EQ(t, 100);
    EXPECT_EQ(id, 3u);
    ASSERT_TRUE(q.popMin(t, id));
    EXPECT_EQ(t, 100);
    EXPECT_EQ(id, 5u);
    ASSERT_TRUE(q.popMin(t, id));
    EXPECT_EQ(t, 2000);
    EXPECT_EQ(id, 7u);
    EXPECT_FALSE(q.popMin(t, id));
    EXPECT_TRUE(q.empty());
}

TEST(TickBucketQueue, RescheduleMovesAnEntry)
{
    TickBucketQueue q;
    q.reset(4, 0);
    q.schedule(2, 1000);
    q.schedule(2, 10); // overrides, does not duplicate
    Tick t = 0;
    std::uint32_t id = 0;
    ASSERT_TRUE(q.popMin(t, id));
    EXPECT_EQ(t, 10);
    EXPECT_EQ(id, 2u);
    EXPECT_FALSE(q.popMin(t, id));
}

TEST(TickBucketQueue, FarFutureEntriesSurviveOverflowMigration)
{
    TickBucketQueue q;
    q.reset(3, 0);
    // The ring horizon is a few hundred ns of ticks; park entries far
    // beyond it, plus one near entry, and check order end to end.
    const Tick far_a = 50'000'000;
    const Tick far_b = 900'000'000;
    q.schedule(0, far_b);
    q.schedule(1, 5);
    q.schedule(2, far_a);

    Tick t = 0;
    std::uint32_t id = 0;
    ASSERT_TRUE(q.popMin(t, id));
    EXPECT_EQ(t, 5);
    EXPECT_EQ(id, 1u);
    ASSERT_TRUE(q.popMin(t, id));
    EXPECT_EQ(t, far_a);
    EXPECT_EQ(id, 2u);
    ASSERT_TRUE(q.popMin(t, id));
    EXPECT_EQ(t, far_b);
    EXPECT_EQ(id, 0u);
    EXPECT_FALSE(q.popMin(t, id));
}

TEST(TickBucketQueue, ResetReusesBuffersAndDropsEntries)
{
    TickBucketQueue q;
    q.reset(4, 0);
    q.schedule(0, 7);
    q.schedule(3, 9);
    q.reset(4, 100'000);
    EXPECT_TRUE(q.empty());
    Tick t = 0;
    std::uint32_t id = 0;
    EXPECT_FALSE(q.popMin(t, id));
    // A queue reset to a late start still orders fresh entries.
    q.schedule(1, 100'500);
    q.schedule(0, 100'400);
    ASSERT_TRUE(q.popMin(t, id));
    EXPECT_EQ(t, 100'400);
    EXPECT_EQ(id, 0u);
}

TEST(TickBucketQueue, RandomizedCrossCheckAgainstOrderedSet)
{
    // Monotone operation stream: every schedule is at or after the
    // most recently popped tick, mirroring the event-loop guarantee.
    // Deltas mix short hops (same/near bucket), mid-range, and jumps
    // far beyond the ring horizon (overflow path).
    Rng rng(0xE0E0'51A7ULL);
    const std::uint32_t num_ids = 70; // > one mask word
    TickBucketQueue q;
    ReferenceQueue ref;

    for (int round = 0; round < 20; ++round) {
        const Tick start =
            static_cast<Tick>(rng.below(1'000'000'000ULL));
        q.reset(num_ids, start);
        ref.reset(num_ids);
        Tick last_pop = start;

        for (int op = 0; op < 4000; ++op) {
            const std::uint64_t roll = rng.below(100);
            if (roll < 55 || ref.empty()) {
                const std::uint32_t id =
                    static_cast<std::uint32_t>(rng.below(num_ids));
                Tick delta = 0;
                const std::uint64_t kind = rng.below(100);
                if (kind < 50)
                    delta = static_cast<Tick>(rng.below(2'000));
                else if (kind < 85)
                    delta = static_cast<Tick>(rng.below(200'000));
                else
                    delta = static_cast<Tick>(
                        rng.below(2'000'000'000ULL));
                q.schedule(id, last_pop + delta);
                ref.schedule(id, last_pop + delta);
            } else {
                Tick qt = 0, rt = 0;
                std::uint32_t qid = 0, rid = 0;
                const bool qok = q.popMin(qt, qid);
                const bool rok = ref.popMin(rt, rid);
                ASSERT_EQ(qok, rok) << "round " << round << " op "
                                    << op;
                if (!qok)
                    continue;
                ASSERT_EQ(qt, rt) << "round " << round << " op " << op;
                ASSERT_EQ(qid, rid)
                    << "round " << round << " op " << op;
                last_pop = qt;
            }
        }

        // Drain both queues completely; order must match to the end.
        for (;;) {
            Tick qt = 0, rt = 0;
            std::uint32_t qid = 0, rid = 0;
            const bool qok = q.popMin(qt, qid);
            const bool rok = ref.popMin(rt, rid);
            ASSERT_EQ(qok, rok);
            if (!qok)
                break;
            ASSERT_EQ(qt, rt);
            ASSERT_EQ(qid, rid);
        }
        EXPECT_TRUE(q.empty());
    }
}
