/**
 * @file
 * Tests of the controller zoo (src/zoo) and the tournament bench
 * layer: registry registration/duplicate/unknown-name behavior,
 * design-string splitting and config knobs, the related-work
 * controllers' model properties, the determinism contract extended to
 * REGR/DSO/WANGCHU (threads 1 vs 4, capture-then-replay), config
 * distinctness in store keys, and the golden leaderboard.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "expect_fatal.hh"
#include "store/result_store.hh"
#include "tournament_lib.hh"
#include "trace/format.hh"
#include "trace/replay.hh"
#include "workloads/workloads.hh"
#include "zoo/dso_controller.hh"
#include "zoo/registry.hh"
#include "zoo/wangchu_controller.hh"

using namespace pcstall;

namespace
{

sim::RunConfig
testConfig(std::uint32_t cus = 2)
{
    sim::RunConfig cfg;
    cfg.gpu.numCus = cus;
    cfg.maxSimTime = 2 * tickMs;
    cfg.scaled();
    return cfg;
}

std::shared_ptr<const isa::Application>
app(const std::string &name, std::uint32_t cus = 2, double scale = 0.2)
{
    workloads::WorkloadParams p;
    p.numCus = cus;
    p.scale = scale;
    return std::make_shared<const isa::Application>(
        workloads::makeWorkload(name, p));
}

// ---------------------------------------------------------------- //
// Registry                                                          //
// ---------------------------------------------------------------- //

TEST(Registry, KnowsEveryBuiltinDesign)
{
    const auto &registry = dvfs::ControllerRegistry::instance();
    for (const char *name :
         {"STALL", "LEAD", "CRIT", "CRISP", "ACCREAC", "PCSTALL",
          "ACCPC", "ORACLE", "GPHT", "STATIC", "REGR", "DSO",
          "WANGCHU"}) {
        EXPECT_TRUE(registry.has(name)) << name;
    }
    EXPECT_FALSE(registry.has("NO-SUCH-DESIGN"));
    // Registration order: paper designs lead the table.
    const auto entries = registry.entries();
    ASSERT_GE(entries.size(), 13u);
    EXPECT_EQ(entries[0].name, "STALL");
    EXPECT_TRUE(entries[0].paperDesign);
}

TEST(Registry, TournamentNamesExcludeConfigRequiredDesigns)
{
    const auto names =
        dvfs::ControllerRegistry::instance().tournamentNames();
    // The acceptance floor: ten-plus ranked controllers.
    EXPECT_GE(names.size(), 10u);
    for (const std::string &name : names)
        EXPECT_NE(name, "STATIC");
    // Related-work zoo members are eligible.
    EXPECT_NE(std::find(names.begin(), names.end(), "REGR"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "DSO"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "WANGCHU"),
              names.end());
}

TEST(Registry, DuplicateRegistrationIsRejectedFirstWins)
{
    auto &registry = dvfs::ControllerRegistry::instance();
    const std::size_t before = registry.entries().size();
    dvfs::ControllerInfo dup;
    dup.name = "PCSTALL";
    dup.summary = "impostor";
    EXPECT_FALSE(registry.add(
        dup, [](const dvfs::ControllerContext &)
            -> std::unique_ptr<dvfs::DvfsController> {
            return nullptr;
        }));
    EXPECT_EQ(registry.entries().size(), before);
    // The original factory still wins.
    const auto made =
        registry.make("PCSTALL", testConfig());
    ASSERT_TRUE(made.ok()) << made.error;
    EXPECT_EQ(made.controller->name(), "PCSTALL");
}

TEST(Registry, PluginRegistrationMakesNewDesignConstructible)
{
    dvfs::ControllerInfo info;
    info.name = "TESTONLY_PLUGIN";
    info.summary = "test plug-in";
    // needsConfig keeps the test entry out of tournamentNames() so
    // later tests in this process see an unchanged eligible set.
    info.needsConfig = true;
    const dvfs::ControllerRegistrar reg(
        info, [](const dvfs::ControllerContext &ctx)
            -> std::unique_ptr<dvfs::DvfsController> {
            return std::make_unique<dvfs::StaticController>(
                static_cast<std::size_t>(
                    dvfs::ConfigKnobs(ctx.config).getInt("state", 0)));
        });
    const auto &registry = dvfs::ControllerRegistry::instance();
    EXPECT_TRUE(registry.has("TESTONLY_PLUGIN"));
    const auto made = registry.make("TESTONLY_PLUGIN:state=2",
                                    testConfig());
    ASSERT_TRUE(made.ok()) << made.error;
}

TEST(Registry, UnknownNameYieldsRecoverableDiagnostic)
{
    const auto made = dvfs::ControllerRegistry::instance().make(
        "NO-SUCH-DESIGN", testConfig());
    EXPECT_FALSE(made.ok());
    EXPECT_NE(made.error.find("NO-SUCH-DESIGN"), std::string::npos);
    EXPECT_NE(made.error.find("registered:"), std::string::npos);
    EXPECT_NE(made.error.find("PCSTALL"), std::string::npos);
    EXPECT_NE(made.error.find("--list-controllers"),
              std::string::npos);
}

TEST(Registry, MakeControllerKeepsTheFatalContractForUnknownNames)
{
    const auto cfg = testConfig();
    EXPECT_FATAL(bench::makeController("NO-SUCH-DESIGN", cfg),
                 "NO-SUCH-DESIGN");
}

TEST(Registry, StaticSpellingsAreEquivalentAndConfigIsRequired)
{
    const auto cfg = testConfig();
    const auto &registry = dvfs::ControllerRegistry::instance();
    const auto bracket = registry.make("STATIC[3]", cfg);
    const auto colon = registry.make("STATIC:3", cfg);
    ASSERT_TRUE(bracket.ok()) << bracket.error;
    ASSERT_TRUE(colon.ok()) << colon.error;
    EXPECT_EQ(bracket.controller->name(), colon.controller->name());
    // No state index: the factory declines, recoverably.
    EXPECT_FALSE(registry.make("STATIC", cfg).ok());
    EXPECT_FALSE(registry.make("STATIC:banana", cfg).ok());
}

TEST(Registry, DesignListPrefersTheExplicitControllerSelection)
{
    bench::BenchOptions opts;
    EXPECT_EQ(opts.designList({"CRISP", "PCSTALL"}),
              (std::vector<std::string>{"CRISP", "PCSTALL"}));
    opts.controllers = {"REGR:hist=4", "WANGCHU"};
    EXPECT_EQ(opts.designList({"CRISP", "PCSTALL"}),
              opts.controllers);
}

// ---------------------------------------------------------------- //
// Design strings and config knobs                                   //
// ---------------------------------------------------------------- //

TEST(SplitDesign, SplitsAtTheFirstColonOnly)
{
    auto plain = dvfs::splitDesign("REGR");
    EXPECT_EQ(plain.base, "REGR");
    EXPECT_EQ(plain.config, "");

    auto cfg = dvfs::splitDesign("REGR:hist=16,forget=0.8");
    EXPECT_EQ(cfg.base, "REGR");
    EXPECT_EQ(cfg.config, "hist=16,forget=0.8");

    auto legacy = dvfs::splitDesign("STATIC[7]");
    EXPECT_EQ(legacy.base, "STATIC");
    EXPECT_EQ(legacy.config, "7");

    auto nested = dvfs::splitDesign("A:b=c:d");
    EXPECT_EQ(nested.base, "A");
    EXPECT_EQ(nested.config, "b=c:d");
}

TEST(ConfigKnobs, TypedAccessorsWithRecoverableDefaults)
{
    const dvfs::ConfigKnobs knobs("hist=16,forget=0.8,bad=abc");
    EXPECT_EQ(knobs.getInt("hist", 8), 16);
    EXPECT_DOUBLE_EQ(knobs.getDouble("forget", 0.9), 0.8);
    EXPECT_TRUE(knobs.has("hist"));
    EXPECT_FALSE(knobs.has("probe"));
    // Absent and malformed knobs both yield the default.
    EXPECT_EQ(knobs.getInt("probe", 16), 16);
    EXPECT_EQ(knobs.getInt("bad", 7), 7);
}

TEST(ConfigKnobs, BareValueIsTheAnonymousKnob)
{
    const dvfs::ConfigKnobs knobs("7");
    EXPECT_EQ(knobs.getInt("", 0), 7);
}

// ---------------------------------------------------------------- //
// Controller models                                                 //
// ---------------------------------------------------------------- //

gpu::CuEpochRecord
record(std::uint64_t committed, Tick busy, Tick mem_interval,
       Tick overlap, Freq freq)
{
    gpu::CuEpochRecord rec;
    rec.committed = committed;
    rec.busy = busy;
    rec.memInterval = mem_interval;
    rec.overlap = overlap;
    rec.freq = freq;
    return rec;
}

TEST(WangChu, SameFrequencyPredictionIsTheIdentity)
{
    const Tick epoch = tickUs;
    const auto rec =
        record(1000, tickUs / 2, tickUs / 4, tickUs / 8,
               Freq{1700} * freqMHz);
    const double same =
        zoo::wangChuInstrAt(rec, epoch, rec.freq);
    EXPECT_NEAR(same, 1000.0, 1e-6);
}

TEST(WangChu, ComputeBoundWorkScalesWithTheCoreClock)
{
    const Tick epoch = tickUs;
    // Fully compute-bound: busy the whole epoch, no memory time.
    const auto rec =
        record(1000, epoch, 0, 0, Freq{1700} * freqMHz);
    const double faster = zoo::wangChuInstrAt(
        rec, epoch, Freq{2200} * freqMHz);
    const double slower = zoo::wangChuInstrAt(
        rec, epoch, Freq{1300} * freqMHz);
    EXPECT_NEAR(faster, 1000.0 * 2200.0 / 1700.0, 1.0);
    EXPECT_NEAR(slower, 1000.0 * 1300.0 / 1700.0, 1.0);
}

TEST(WangChu, MemoryBoundWorkIsFrequencyInsensitive)
{
    const Tick epoch = tickUs;
    // Almost all memory: tiny issue time, full-epoch memory window.
    const auto rec =
        record(1000, epoch / 100, epoch, epoch / 100,
               Freq{1700} * freqMHz);
    const double faster = zoo::wangChuInstrAt(
        rec, epoch, Freq{2200} * freqMHz);
    // Speedup bounded by the tiny core share - well under 2%.
    EXPECT_LT(faster / 1000.0, 1.02);
    EXPECT_GE(faster / 1000.0, 1.0 - 1e-9);
}

TEST(Dso, StaticAnalysisIndexesKernelsByPcAddress)
{
    const auto a = app("comd");
    zoo::DsoConfig cfg;
    const zoo::DsoController dso(cfg, a.get());
    ASSERT_GT(dso.staticKernelCount(), 0u);
    // Every launched kernel's first instruction resolves to a sane
    // memory fraction...
    for (const isa::Kernel &kernel : a->launches) {
        const double frac = dso.staticFracAt(kernel.codeBase);
        EXPECT_GE(frac, 0.0);
        EXPECT_LE(frac, 1.0);
    }
    // ...and an address far outside any kernel does not.
    EXPECT_LT(dso.staticFracAt(0xFFFFFFFFFFFF0000ULL), 0.0);
}

TEST(Dso, NullApplicationDegradesToDynamicOnly)
{
    zoo::DsoConfig cfg;
    const zoo::DsoController dso(cfg, nullptr);
    EXPECT_EQ(dso.staticKernelCount(), 0u);
}

// ---------------------------------------------------------------- //
// Determinism: threads, repetition, capture-then-replay             //
// ---------------------------------------------------------------- //

bench::BenchOptions
smallOptions(unsigned threads)
{
    bench::BenchOptions opts;
    opts.cus = 4;
    opts.scale = 0.25;
    opts.threads = threads;
    return opts;
}

std::vector<bench::SweepCell>
zooGrid(bench::SweepRunner &runner)
{
    std::vector<bench::SweepCell> cells;
    for (const char *w : {"comd", "dgemm"}) {
        for (const char *design :
             {"REGR", "DSO", "WANGCHU", "REGR:hist=4,probe=8"}) {
            cells.push_back(runner.cell(w, design, true));
        }
    }
    return cells;
}

void
expectIdenticalOutcome(const bench::RunOutcome &serial,
                       const bench::RunOutcome &parallel,
                       const std::string &label)
{
    SCOPED_TRACE(label);
    ASSERT_EQ(serial.ok, parallel.ok);
    if (!serial.ok)
        return;
    const sim::RunResult &a = serial.result;
    const sim::RunResult &b = parallel.result;
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.energy, b.energy); // exact: same arithmetic, same order
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.predictionAccuracy, b.predictionAccuracy);
    EXPECT_EQ(a.transitions, b.transitions);
    EXPECT_EQ(a.completed, b.completed);
}

TEST(ZooDeterminism, ThreadCountDoesNotChangeZooResults)
{
    bench::SweepRunner serial(smallOptions(1));
    const auto base = serial.run(zooGrid(serial));

    bench::SweepRunner parallel(smallOptions(4));
    const auto par = parallel.run(zooGrid(parallel));

    ASSERT_EQ(base.size(), par.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        expectIdenticalOutcome(base[i].run, par[i].run,
                               "cell " + std::to_string(i));
        EXPECT_TRUE(base[i].run.ok) << base[i].run.error;
    }
}

TEST(ZooDeterminism, DifferentConfigsAreDifferentExperiments)
{
    bench::SweepRunner runner(smallOptions(2));
    std::vector<bench::SweepCell> cells;
    cells.push_back(runner.cell("comd", "REGR:hist=4,probe=8"));
    cells.push_back(runner.cell("comd", "REGR:hist=32,probe=64"));
    const auto out = runner.run(std::move(cells));
    ASSERT_EQ(out.size(), 2u);
    ASSERT_TRUE(out[0].run.ok) << out[0].run.error;
    ASSERT_TRUE(out[1].run.ok) << out[1].run.error;
    // Distinct knobs must change the run (probing cadence alone
    // guarantees different transition sequences).
    EXPECT_NE(out[0].run.result.transitions,
              out[1].run.result.transitions);
}

/** Capture one live run of @p design and replay it on a cold twin. */
void
expectReplayDeterministic(const std::string &design)
{
    SCOPED_TRACE(design);
    const auto cfg = testConfig();
    const auto a = app("comd");

    const auto build = [&] {
        auto made = dvfs::ControllerRegistry::instance().make(
            design, cfg, a.get());
        EXPECT_TRUE(made.ok()) << made.error;
        return std::move(made.controller);
    };

    auto live = build();
    sim::ExperimentDriver driver(cfg);
    const std::string path = ::testing::TempDir() + "pcstall_zoo_" +
        design.substr(0, design.find(':')) + "_" +
        std::to_string(static_cast<long>(::getpid())) + ".pctrace";
    trace::TraceWriter writer(
        path, trace::makeTraceMeta(cfg, driver.table(), "comd",
                                   *live, {}));
    ASSERT_TRUE(writer.ok());
    trace::TraceCapture cap(writer);
    const sim::RunResult live_result = driver.run(a, *live, &cap);
    ASSERT_TRUE(cap.finished());

    const auto read = trace::readTraceFile(path);
    ASSERT_TRUE(read.ok()) << read.error;

    auto twin = build();
    trace::ReplayDriver replay(*read.trace);
    const trace::ReplayOutcome outcome = replay.run(*twin);
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    EXPECT_TRUE(outcome.deterministic())
        << outcome.decisionMismatches
        << " mismatches; first: " << outcome.firstMismatch;
    EXPECT_EQ(outcome.result.execTime, live_result.execTime);
    EXPECT_DOUBLE_EQ(outcome.result.energy, live_result.energy);
    std::remove(path.c_str());
}

TEST(ZooDeterminism, RegrReplayReproducesTheLiveRun)
{
    expectReplayDeterministic("REGR");
}

TEST(ZooDeterminism, DsoReplayReproducesTheLiveRun)
{
    expectReplayDeterministic("DSO");
}

TEST(ZooDeterminism, WangChuReplayReproducesTheLiveRun)
{
    expectReplayDeterministic("WANGCHU");
}

// ---------------------------------------------------------------- //
// Store keys                                                        //
// ---------------------------------------------------------------- //

TEST(StoreKeys, ControllerConfigIsPartOfTheCellIdentity)
{
    store::CellKey a;
    a.harness = "tournament";
    a.workload = "comd";
    a.design = "REGR";
    a.controllerConfig = "hist=4";
    a.fingerprint = "cfg";
    store::CellKey b = a;
    b.controllerConfig = "hist=8";
    EXPECT_NE(a.text(), b.text());
    EXPECT_NE(store::keyDigest(a), store::keyDigest(b));
    // And the config slot cannot be forged from neighboring fields.
    store::CellKey c = a;
    c.controllerConfig = "";
    c.design = "REGR\x1fhist=4";
    EXPECT_NE(store::keyDigest(a), store::keyDigest(c));
}

// ---------------------------------------------------------------- //
// Tournament scoring and the golden leaderboard                     //
// ---------------------------------------------------------------- //

TEST(Tournament, ObjectiveListParsesRecoverably)
{
    EXPECT_EQ(bench::tournamentObjectives("").size(), 3u);
    const auto two = bench::tournamentObjectives("ed2p,edp,ed2p");
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0].name, "ed2p");
    EXPECT_EQ(two[1].name, "edp");
    // Unknown labels are dropped; an empty selection reverts to all.
    EXPECT_EQ(bench::tournamentObjectives("bogus").size(), 3u);
    const auto mixed = bench::tournamentObjectives("bogus,edp");
    ASSERT_EQ(mixed.size(), 1u);
    EXPECT_EQ(mixed[0].name, "edp");
}

TEST(Tournament, EnergyBoundScorePenalizesMissedDeadlines)
{
    sim::RunResult base;
    base.energy = 100.0;
    base.execTime = 100 * tickUs;
    sim::RunResult in_bound;
    in_bound.energy = 80.0;
    in_bound.execTime = 104 * tickUs; // within the 5% bound
    sim::RunResult over_bound = in_bound;
    over_bound.execTime = 210 * tickUs; // 2.1x: far past the bound

    const double ok_score = bench::tournamentScore(
        in_bound, base, dvfs::Objective::EnergyUnderPerfBound, 0.05);
    EXPECT_NEAR(ok_score, 0.8, 1e-9);
    const double late_score = bench::tournamentScore(
        over_bound, base, dvfs::Objective::EnergyUnderPerfBound,
        0.05);
    EXPECT_NEAR(late_score, 0.8 * (2.1 / 1.05), 1e-9);
    EXPECT_GT(late_score, ok_score);
}

TEST(Tournament, LeaderboardMatchesGoldenFile)
{
    bench::BenchOptions opts;
    opts.cus = 4;
    opts.scale = 0.12;
    opts.threads = 2;
    bench::SweepRunner runner(opts);
    const std::vector<std::string> designs = {
        "STALL", "PCSTALL", "WANGCHU", "REGR", "DSO"};
    const std::vector<std::string> workloads = {"dgemm", "BwdBN"};
    const bench::Leaderboard board = bench::runTournament(
        runner, designs, workloads,
        bench::tournamentObjectives("edp,energy-bound"));

    ASSERT_EQ(board.rows.size(), designs.size());
    // Ranking is monotone in the overall score.
    for (std::size_t r = 1; r < board.rows.size(); ++r) {
        EXPECT_LE(board.rows[r - 1].overall,
                  board.rows[r].overall + 1e-12);
    }

    std::ostringstream got;
    bench::leaderboardTable(board).print(got);
    got << "\n" << bench::leaderboardJson(board);

    const std::string path = std::string(PCSTALL_TEST_DATA_DIR) +
        "/leaderboard_golden.txt";
    if (std::getenv("PCSTALL_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << got.str();
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << path << " missing; regenerate with PCSTALL_REGEN_GOLDEN=1";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got.str(), want.str())
        << "leaderboard output drifted; if intentional, regenerate "
           "with PCSTALL_REGEN_GOLDEN=1 and note the change in "
           "docs/controllers.md";
}

} // namespace
