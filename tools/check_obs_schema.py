#!/usr/bin/env python3
"""Validate observability JSON documents against their schemas.

Stdlib-only checker for the two documents the harnesses emit
(docs/observability.md):

  check_obs_schema.py metrics    <file>  pcstall-metrics-v1 snapshot
  check_obs_schema.py timeline   <file>  pcstall-timeline-v1 Chrome trace
  check_obs_schema.py canonical  <file>  print the deterministic part of
                                         a metrics snapshot in canonical
                                         form (for --threads N vs 1
                                         byte-comparison; the "timing"
                                         section carries wall-clock
                                         values and is stripped)
  check_obs_schema.py provenance <file>  pcstall-provenance-v1 decision
                                         dump (`dvfs_explain json`,
                                         docs/provenance.md)

Exit status: 0 when the document validates, 1 with a diagnostic per
violation otherwise. `--require NAME` (repeatable, metrics mode)
additionally asserts a metric of that name is present; `--require-event
NAME` (timeline mode) asserts at least one trace event of that name;
`--require-prefix PREFIX` (repeatable, metrics mode) asserts at least
one metric whose name starts with the prefix exists in either section
(e.g. `--require-prefix farm.cells.` for sweep-farm store telemetry).
"""

import argparse
import json
import sys

METRICS_SCHEMA = "pcstall-metrics-v1"
TIMELINE_SCHEMA = "pcstall-timeline-v1"
PROVENANCE_SCHEMA = "pcstall-provenance-v1"

HIST_KEYS = {
    "count",
    "sum",
    "min",
    "max",
    "p50",
    "p95",
    "p99",
    "buckets",
    "overflow",
}


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


class Checker:
    def __init__(self):
        self.errors = []

    def error(self, msg):
        self.errors.append(msg)

    def require(self, cond, msg):
        if not cond:
            self.error(msg)
        return cond


def check_histogram(ck, name, h):
    if not ck.require(isinstance(h, dict), f"{name}: not an object"):
        return
    missing = sorted(HIST_KEYS - set(h))
    if not ck.require(not missing, f"{name}: missing {missing}"):
        return
    if not ck.require(
        isinstance(h["count"], int) and h["count"] >= 0,
        f"{name}: count must be a non-negative integer",
    ):
        return
    for k in ("sum", "min", "max", "p50", "p95", "p99"):
        ck.require(is_num(h[k]), f"{name}: {k} must be a number")
    ck.require(
        isinstance(h["overflow"], int) and h["overflow"] >= 0,
        f"{name}: overflow must be a non-negative integer",
    )
    if not ck.require(
        isinstance(h["buckets"], list), f"{name}: buckets must be a list"
    ):
        return
    in_buckets = 0
    prev_le = None
    for i, b in enumerate(h["buckets"]):
        if not ck.require(
            isinstance(b, list) and len(b) == 2 and is_num(b[0])
            and isinstance(b[1], int) and b[1] >= 0,
            f"{name}: bucket[{i}] must be [upper_edge, count]",
        ):
            return
        if prev_le is not None:
            ck.require(
                b[0] > prev_le,
                f"{name}: bucket edges must be strictly ascending",
            )
        prev_le = b[0]
        in_buckets += b[1]
    ck.require(
        in_buckets + h["overflow"] == h["count"],
        f"{name}: bucket counts + overflow ({in_buckets} + "
        f"{h['overflow']}) != count ({h['count']})",
    )
    if h["count"] > 0 and all(is_num(h[k]) for k in ("min", "p50", "p95", "p99", "max")):
        ck.require(
            h["min"] <= h["p50"] <= h["p95"] <= h["p99"] <= h["max"],
            f"{name}: percentiles not ordered "
            f"(min<=p50<=p95<=p99<=max)",
        )


def check_metric_section(ck, sec, where):
    if not ck.require(isinstance(sec, dict), f"{where}: not an object"):
        return
    for key in ("counters", "gauges", "histograms"):
        if not ck.require(
            key in sec and isinstance(sec[key], dict),
            f"{where}: missing object '{key}'",
        ):
            continue
        for name, v in sec[key].items():
            label = f"{where}.{key}[{name!r}]"
            if key == "counters":
                ck.require(
                    isinstance(v, int) and v >= 0,
                    f"{label}: counter must be a non-negative integer",
                )
            elif key == "gauges":
                ck.require(is_num(v), f"{label}: gauge must be a number")
            else:
                check_histogram(ck, label, v)


def metric_names(doc):
    names = set()
    sections = [doc] + ([doc["timing"]] if isinstance(doc.get("timing"), dict) else [])
    for sec in sections:
        for key in ("counters", "gauges", "histograms"):
            if isinstance(sec.get(key), dict):
                names.update(sec[key])
    return names


def check_metrics(doc, required, required_prefixes=()):
    ck = Checker()
    if not ck.require(isinstance(doc, dict), "top level: not an object"):
        return ck.errors
    ck.require(
        doc.get("schema") == METRICS_SCHEMA,
        f"schema must be '{METRICS_SCHEMA}' (got {doc.get('schema')!r})",
    )
    check_metric_section(ck, doc, "top level")
    if "timing" in doc:
        check_metric_section(ck, doc["timing"], "timing")
    present = metric_names(doc)
    for name in required:
        ck.require(name in present, f"required metric '{name}' absent")
    for prefix in required_prefixes:
        ck.require(
            any(name.startswith(prefix) for name in present),
            f"no metric with required prefix '{prefix}'",
        )
    return ck.errors


def check_timeline(doc, required_events):
    ck = Checker()
    if not ck.require(isinstance(doc, dict), "top level: not an object"):
        return ck.errors
    other = doc.get("otherData")
    ck.require(
        isinstance(other, dict) and other.get("schema") == TIMELINE_SCHEMA,
        f"otherData.schema must be '{TIMELINE_SCHEMA}'",
    )
    events = doc.get("traceEvents")
    if not ck.require(isinstance(events, list), "traceEvents must be a list"):
        return ck.errors
    seen = set()
    for i, ev in enumerate(events):
        label = f"traceEvents[{i}]"
        if not ck.require(isinstance(ev, dict), f"{label}: not an object"):
            continue
        if not ck.require(
            isinstance(ev.get("name"), str), f"{label}: missing name"
        ):
            continue
        seen.add(ev["name"])
        ph = ev.get("ph")
        if not ck.require(
            ph in ("X", "i", "M"), f"{label}: ph must be X, i or M"
        ):
            continue
        for k in ("pid", "tid"):
            ck.require(
                isinstance(ev.get(k), int), f"{label}: {k} must be an integer"
            )
        if ph == "X":
            ck.require(
                is_num(ev.get("ts")) and is_num(ev.get("dur"))
                and ev["dur"] >= 0,
                f"{label}: X event needs numeric ts and dur >= 0",
            )
        elif ph == "i":
            ck.require(is_num(ev.get("ts")), f"{label}: i event needs ts")
            ck.require(
                ev.get("s") in ("t", "p", "g"),
                f"{label}: i event needs scope s",
            )
        else:
            ck.require(
                isinstance(ev.get("args"), dict),
                f"{label}: M event needs args",
            )
    for name in required_events:
        ck.require(name in seen, f"required event '{name}' absent")
    return ck.errors


def check_prov_domain(ck, label, dom, num_states, realized):
    if not ck.require(isinstance(dom, dict), f"{label}: not an object"):
        return
    ck.require(
        isinstance(dom.get("pc"), str), f"{label}: pc must be a string"
    )
    for k in ("lookups", "hits", "same_region", "reactive",
              "elapsed_instr", "load_stall_ticks", "mem_accesses"):
        ck.require(
            isinstance(dom.get(k), int) and dom[k] >= 0,
            f"{label}: {k} must be a non-negative integer",
        )
    if isinstance(dom.get("lookups"), int) and isinstance(dom.get("hits"), int):
        ck.require(
            dom["hits"] <= dom["lookups"],
            f"{label}: hits ({dom['hits']}) exceed lookups "
            f"({dom['lookups']})",
        )
    for k in ("pred_sens", "pred_level", "pred_instr"):
        ck.require(is_num(dom.get(k)), f"{label}: {k} must be a number")
    state_keys = ["chosen_state", "applied_state"]
    if realized:
        state_keys.append("best_state")
        ck.require(
            isinstance(dom.get("realized_instr"), int)
            and dom["realized_instr"] >= 0,
            f"{label}: realized_instr must be a non-negative integer",
        )
        for k in ("chosen_score", "best_score", "nominal_score"):
            ck.require(is_num(dom.get(k)), f"{label}: {k} must be a number")
    for k in state_keys:
        ck.require(
            isinstance(dom.get(k), int) and 0 <= dom[k] < num_states,
            f"{label}: {k} must be a state index in [0, {num_states})",
        )


def check_provenance(doc):
    ck = Checker()
    if not ck.require(isinstance(doc, dict), "top level: not an object"):
        return ck.errors
    ck.require(
        doc.get("schema") == PROVENANCE_SCHEMA,
        f"schema must be '{PROVENANCE_SCHEMA}' (got {doc.get('schema')!r})",
    )

    meta = doc.get("meta")
    num_states = 0
    num_domains = 0
    if ck.require(isinstance(meta, dict), "meta: missing object"):
        for k in ("workload", "controller", "objective"):
            ck.require(
                isinstance(meta.get(k), str) and meta[k],
                f"meta.{k}: must be a non-empty string",
            )
        ck.require(
            isinstance(meta.get("epoch_len_ticks"), int)
            and meta["epoch_len_ticks"] > 0,
            "meta.epoch_len_ticks: must be a positive integer",
        )
        if ck.require(
            isinstance(meta.get("domains"), int) and meta["domains"] > 0,
            "meta.domains: must be a positive integer",
        ):
            num_domains = meta["domains"]
        freqs = meta.get("state_freq_mhz")
        if ck.require(
            isinstance(freqs, list) and freqs
            and all(isinstance(f, int) and f > 0 for f in freqs),
            "meta.state_freq_mhz: must be a non-empty list of "
            "positive integers",
        ):
            num_states = len(freqs)
            ck.require(
                all(a < b for a, b in zip(freqs, freqs[1:])),
                "meta.state_freq_mhz: must be strictly ascending",
            )
            ck.require(
                isinstance(meta.get("nominal_state"), int)
                and 0 <= meta["nominal_state"] < num_states,
                f"meta.nominal_state: must be a state index in "
                f"[0, {num_states})",
            )

    records = doc.get("records")
    realized_count = 0
    if ck.require(isinstance(records, list), "records: must be a list"):
        prev_epoch = None
        for i, rec in enumerate(records):
            label = f"records[{i}]"
            if not ck.require(isinstance(rec, dict), f"{label}: not an object"):
                continue
            ck.require(
                isinstance(rec.get("epoch"), int) and rec["epoch"] >= 0,
                f"{label}: epoch must be a non-negative integer",
            )
            ck.require(is_num(rec.get("start")), f"{label}: start missing")
            for k in ("fallback", "realized"):
                ck.require(
                    isinstance(rec.get(k), bool), f"{label}: {k} must be a bool"
                )
            if prev_epoch is not None and isinstance(rec.get("epoch"), int):
                ck.require(
                    rec["epoch"] > prev_epoch,
                    f"{label}: epochs must be strictly ascending",
                )
            prev_epoch = rec.get("epoch")
            realized = rec.get("realized") is True
            if realized:
                realized_count += 1
                ck.require(
                    is_num(rec.get("oracle_regret_rel"))
                    and rec["oracle_regret_rel"] >= 0,
                    f"{label}: oracle_regret_rel must be >= 0",
                )
                ck.require(
                    is_num(rec.get("static_regret_rel")),
                    f"{label}: static_regret_rel must be a number",
                )
            scores = rec.get("state_scores")
            if ck.require(
                isinstance(scores, list),
                f"{label}: state_scores must be a list",
            ):
                want = num_states if realized else 0
                ck.require(
                    len(scores) == want and all(is_num(s) for s in scores),
                    f"{label}: state_scores must hold {want} numbers",
                )
            doms = rec.get("domains")
            if ck.require(
                isinstance(doms, list) and len(doms) == num_domains,
                f"{label}: domains must be a list of {num_domains}",
            ):
                for d, dom in enumerate(doms):
                    check_prov_domain(
                        ck, f"{label}.domains[{d}]", dom, num_states, realized
                    )
        # An unrealized (dangling) decision can only be the final record.
        for i, rec in enumerate(records[:-1]):
            if isinstance(rec, dict):
                ck.require(
                    rec.get("realized") is True,
                    f"records[{i}]: unrealized record before the end",
                )

    regret = doc.get("regret")
    if ck.require(isinstance(regret, dict), "regret: missing object"):
        ck.require(
            regret.get("decisions") == realized_count,
            f"regret.decisions ({regret.get('decisions')!r}) != realized "
            f"record count ({realized_count})",
        )
        if realized_count > 0:
            for k in ("mean_oracle", "p95_oracle", "max_oracle"):
                ck.require(
                    is_num(regret.get(k)) and regret[k] >= 0,
                    f"regret.{k}: must be a number >= 0",
                )
            ck.require(
                is_num(regret.get("mean_static")),
                "regret.mean_static: must be a number",
            )
    return ck.errors


def canonical(doc):
    """The deterministic part of a metrics snapshot, canonically
    serialized: identical bytes for identical simulated work, however
    many threads produced it."""
    kept = {
        k: doc[k]
        for k in ("schema", "counters", "gauges", "histograms")
        if k in doc
    }
    return json.dumps(kept, sort_keys=True, indent=1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "mode", choices=("metrics", "timeline", "canonical", "provenance")
    )
    parser.add_argument("file")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="metrics mode: assert this metric is present",
    )
    parser.add_argument(
        "--require-event",
        action="append",
        default=[],
        metavar="NAME",
        help="timeline mode: assert an event of this name exists",
    )
    parser.add_argument(
        "--require-prefix",
        action="append",
        default=[],
        metavar="PREFIX",
        help="metrics mode: assert a metric with this name prefix exists",
    )
    args = parser.parse_args()

    try:
        with open(args.file) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: {args.file}: {e}")

    if args.mode == "canonical":
        errors = check_metrics(doc, args.require, args.require_prefix)
        if errors:
            for e in errors:
                print(f"error: {args.file}: {e}", file=sys.stderr)
            return 1
        print(canonical(doc))
        return 0

    if args.mode == "metrics":
        errors = check_metrics(doc, args.require, args.require_prefix)
        kind, detail = "metrics snapshot", f"{len(metric_names(doc))} metrics"
    elif args.mode == "provenance":
        errors = check_provenance(doc)
        records = doc.get("records") if isinstance(doc, dict) else None
        n = len(records) if isinstance(records, list) else 0
        kind, detail = "provenance dump", f"{n} decisions"
    else:
        errors = check_timeline(doc, args.require_event)
        kind = "timeline"
        detail = f"{len(doc.get('traceEvents', []))} events"
    if errors:
        for e in errors:
            print(f"error: {args.file}: {e}")
        return 1
    print(f"{args.file}: valid {kind} ({detail})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
