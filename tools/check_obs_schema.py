#!/usr/bin/env python3
"""Validate observability JSON documents against their schemas.

Stdlib-only checker for the two documents the harnesses emit
(docs/observability.md):

  check_obs_schema.py metrics   <file>   pcstall-metrics-v1 snapshot
  check_obs_schema.py timeline  <file>   pcstall-timeline-v1 Chrome trace
  check_obs_schema.py canonical <file>   print the deterministic part of
                                         a metrics snapshot in canonical
                                         form (for --threads N vs 1
                                         byte-comparison; the "timing"
                                         section carries wall-clock
                                         values and is stripped)

Exit status: 0 when the document validates, 1 with a diagnostic per
violation otherwise. `--require NAME` (repeatable, metrics mode)
additionally asserts a metric of that name is present; `--require-event
NAME` (timeline mode) asserts at least one trace event of that name;
`--require-prefix PREFIX` (repeatable, metrics mode) asserts at least
one metric whose name starts with the prefix exists in either section
(e.g. `--require-prefix farm.cells.` for sweep-farm store telemetry).
"""

import argparse
import json
import sys

METRICS_SCHEMA = "pcstall-metrics-v1"
TIMELINE_SCHEMA = "pcstall-timeline-v1"

HIST_KEYS = {
    "count",
    "sum",
    "min",
    "max",
    "p50",
    "p95",
    "p99",
    "buckets",
    "overflow",
}


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


class Checker:
    def __init__(self):
        self.errors = []

    def error(self, msg):
        self.errors.append(msg)

    def require(self, cond, msg):
        if not cond:
            self.error(msg)
        return cond


def check_histogram(ck, name, h):
    if not ck.require(isinstance(h, dict), f"{name}: not an object"):
        return
    missing = sorted(HIST_KEYS - set(h))
    if not ck.require(not missing, f"{name}: missing {missing}"):
        return
    if not ck.require(
        isinstance(h["count"], int) and h["count"] >= 0,
        f"{name}: count must be a non-negative integer",
    ):
        return
    for k in ("sum", "min", "max", "p50", "p95", "p99"):
        ck.require(is_num(h[k]), f"{name}: {k} must be a number")
    ck.require(
        isinstance(h["overflow"], int) and h["overflow"] >= 0,
        f"{name}: overflow must be a non-negative integer",
    )
    if not ck.require(
        isinstance(h["buckets"], list), f"{name}: buckets must be a list"
    ):
        return
    in_buckets = 0
    prev_le = None
    for i, b in enumerate(h["buckets"]):
        if not ck.require(
            isinstance(b, list) and len(b) == 2 and is_num(b[0])
            and isinstance(b[1], int) and b[1] >= 0,
            f"{name}: bucket[{i}] must be [upper_edge, count]",
        ):
            return
        if prev_le is not None:
            ck.require(
                b[0] > prev_le,
                f"{name}: bucket edges must be strictly ascending",
            )
        prev_le = b[0]
        in_buckets += b[1]
    ck.require(
        in_buckets + h["overflow"] == h["count"],
        f"{name}: bucket counts + overflow ({in_buckets} + "
        f"{h['overflow']}) != count ({h['count']})",
    )
    if h["count"] > 0 and all(is_num(h[k]) for k in ("min", "p50", "p95", "p99", "max")):
        ck.require(
            h["min"] <= h["p50"] <= h["p95"] <= h["p99"] <= h["max"],
            f"{name}: percentiles not ordered "
            f"(min<=p50<=p95<=p99<=max)",
        )


def check_metric_section(ck, sec, where):
    if not ck.require(isinstance(sec, dict), f"{where}: not an object"):
        return
    for key in ("counters", "gauges", "histograms"):
        if not ck.require(
            key in sec and isinstance(sec[key], dict),
            f"{where}: missing object '{key}'",
        ):
            continue
        for name, v in sec[key].items():
            label = f"{where}.{key}[{name!r}]"
            if key == "counters":
                ck.require(
                    isinstance(v, int) and v >= 0,
                    f"{label}: counter must be a non-negative integer",
                )
            elif key == "gauges":
                ck.require(is_num(v), f"{label}: gauge must be a number")
            else:
                check_histogram(ck, label, v)


def metric_names(doc):
    names = set()
    sections = [doc] + ([doc["timing"]] if isinstance(doc.get("timing"), dict) else [])
    for sec in sections:
        for key in ("counters", "gauges", "histograms"):
            if isinstance(sec.get(key), dict):
                names.update(sec[key])
    return names


def check_metrics(doc, required, required_prefixes=()):
    ck = Checker()
    if not ck.require(isinstance(doc, dict), "top level: not an object"):
        return ck.errors
    ck.require(
        doc.get("schema") == METRICS_SCHEMA,
        f"schema must be '{METRICS_SCHEMA}' (got {doc.get('schema')!r})",
    )
    check_metric_section(ck, doc, "top level")
    if "timing" in doc:
        check_metric_section(ck, doc["timing"], "timing")
    present = metric_names(doc)
    for name in required:
        ck.require(name in present, f"required metric '{name}' absent")
    for prefix in required_prefixes:
        ck.require(
            any(name.startswith(prefix) for name in present),
            f"no metric with required prefix '{prefix}'",
        )
    return ck.errors


def check_timeline(doc, required_events):
    ck = Checker()
    if not ck.require(isinstance(doc, dict), "top level: not an object"):
        return ck.errors
    other = doc.get("otherData")
    ck.require(
        isinstance(other, dict) and other.get("schema") == TIMELINE_SCHEMA,
        f"otherData.schema must be '{TIMELINE_SCHEMA}'",
    )
    events = doc.get("traceEvents")
    if not ck.require(isinstance(events, list), "traceEvents must be a list"):
        return ck.errors
    seen = set()
    for i, ev in enumerate(events):
        label = f"traceEvents[{i}]"
        if not ck.require(isinstance(ev, dict), f"{label}: not an object"):
            continue
        if not ck.require(
            isinstance(ev.get("name"), str), f"{label}: missing name"
        ):
            continue
        seen.add(ev["name"])
        ph = ev.get("ph")
        if not ck.require(
            ph in ("X", "i", "M"), f"{label}: ph must be X, i or M"
        ):
            continue
        for k in ("pid", "tid"):
            ck.require(
                isinstance(ev.get(k), int), f"{label}: {k} must be an integer"
            )
        if ph == "X":
            ck.require(
                is_num(ev.get("ts")) and is_num(ev.get("dur"))
                and ev["dur"] >= 0,
                f"{label}: X event needs numeric ts and dur >= 0",
            )
        elif ph == "i":
            ck.require(is_num(ev.get("ts")), f"{label}: i event needs ts")
            ck.require(
                ev.get("s") in ("t", "p", "g"),
                f"{label}: i event needs scope s",
            )
        else:
            ck.require(
                isinstance(ev.get("args"), dict),
                f"{label}: M event needs args",
            )
    for name in required_events:
        ck.require(name in seen, f"required event '{name}' absent")
    return ck.errors


def canonical(doc):
    """The deterministic part of a metrics snapshot, canonically
    serialized: identical bytes for identical simulated work, however
    many threads produced it."""
    kept = {
        k: doc[k]
        for k in ("schema", "counters", "gauges", "histograms")
        if k in doc
    }
    return json.dumps(kept, sort_keys=True, indent=1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("mode", choices=("metrics", "timeline", "canonical"))
    parser.add_argument("file")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="metrics mode: assert this metric is present",
    )
    parser.add_argument(
        "--require-event",
        action="append",
        default=[],
        metavar="NAME",
        help="timeline mode: assert an event of this name exists",
    )
    parser.add_argument(
        "--require-prefix",
        action="append",
        default=[],
        metavar="PREFIX",
        help="metrics mode: assert a metric with this name prefix exists",
    )
    args = parser.parse_args()

    try:
        with open(args.file) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: {args.file}: {e}")

    if args.mode == "canonical":
        errors = check_metrics(doc, args.require, args.require_prefix)
        if errors:
            for e in errors:
                print(f"error: {args.file}: {e}", file=sys.stderr)
            return 1
        print(canonical(doc))
        return 0

    if args.mode == "metrics":
        errors = check_metrics(doc, args.require, args.require_prefix)
    else:
        errors = check_timeline(doc, args.require_event)
    if errors:
        for e in errors:
            print(f"error: {args.file}: {e}")
        return 1
    kind = "metrics snapshot" if args.mode == "metrics" else "timeline"
    detail = (
        f"{len(doc.get('traceEvents', []))} events"
        if args.mode == "timeline"
        else f"{len(metric_names(doc))} metrics"
    )
    print(f"{args.file}: valid {kind} ({detail})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
