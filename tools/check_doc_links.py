#!/usr/bin/env python3
"""Validate relative links and anchors in the repo's Markdown files.

Scans every tracked *.md file (or the files given on the command
line), extracts inline Markdown links and images, and checks that
each relative target exists. External schemes (http, https, mailto)
are skipped. Anchors are validated too: a `path#anchor` target must
name a heading (GitHub slugification) or an explicit `<a name=...>` /
`<a id=...>` anchor in the target file, and a pure `#anchor` must
resolve within the same file. Exits non-zero listing every broken
link, so CI catches documentation rot - dead paths and dead anchors
alike.

Standard library only - runs on any python3.
"""

import argparse
import os
import re
import sys

# Inline link/image: [text](target) - stops at the first unescaped
# closing paren, which is fine for the plain paths this repo uses.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
EXPLICIT_ANCHOR_RE = re.compile(
    r"<a\s+(?:name|id)\s*=\s*[\"']([^\"']+)[\"']", re.IGNORECASE
)
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root):
    """All .md files under *root*, skipping VCS and build dirs."""
    skip_dirs = {".git", "build", "node_modules", ".cache"}
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in skip_dirs]
        for name in filenames:
            if name.endswith(".md"):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def github_slug(heading, seen):
    """GitHub's heading-to-anchor slugification: lowercase, strip
    everything but word characters, spaces and hyphens, spaces to
    hyphens, then -1/-2/... suffixes for duplicates."""
    # Inline markup does not contribute to the slug text.
    text = re.sub(r"[*_`]", "", heading)
    # Markdown links in headings slugify by their link text.
    text = re.sub(r"!?\[([^\]]*)\]\([^()]*\)", r"\1", text)
    slug = text.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    if slug not in seen:
        seen[slug] = 0
        return slug
    seen[slug] += 1
    return f"{slug}-{seen[slug]}"


def anchors_of(md_path, cache):
    """The set of valid anchors in *md_path* (memoized)."""
    if md_path in cache:
        return cache[md_path]
    anchors = set()
    seen = {}
    in_fence = False
    try:
        with open(md_path, encoding="utf-8", errors="replace") as fh:
            for line in fh:
                if CODE_FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                match = HEADING_RE.match(line)
                if match:
                    anchors.add(github_slug(match.group(2), seen))
                for explicit in EXPLICIT_ANCHOR_RE.finditer(line):
                    anchors.add(explicit.group(1))
    except OSError:
        pass
    cache[md_path] = anchors
    return anchors


def check_file(md_path, root, anchor_cache):
    """Return a list of (line_number, target, reason) broken links."""
    broken = []
    base = os.path.dirname(md_path)
    in_fence = False
    with open(md_path, encoding="utf-8", errors="replace") as fh:
        for lineno, line in enumerate(fh, start=1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_SCHEMES):
                    continue
                path_part, _, anchor = target.partition("#")
                if path_part:
                    # Leading "/" means repo-root-relative in this
                    # repo's docs; everything else is file-relative.
                    if path_part.startswith("/"):
                        resolved = os.path.join(
                            root, path_part.lstrip("/")
                        )
                    else:
                        resolved = os.path.join(base, path_part)
                    if not os.path.exists(resolved):
                        broken.append((lineno, target, "missing file"))
                        continue
                else:
                    resolved = md_path  # in-page anchor
                if not anchor:
                    continue
                # Anchors only make sense into Markdown files; a
                # #Lnn source-line fragment on a code path is fine.
                if not resolved.endswith(".md"):
                    continue
                if anchor not in anchors_of(resolved, anchor_cache):
                    broken.append((lineno, target, "dead anchor"))
    return broken


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="*",
        help="markdown files to check (default: every .md in --root)",
    )
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root for absolute links and the default scan",
    )
    args = parser.parse_args()

    files = args.files or markdown_files(args.root)
    anchor_cache = {}
    total_broken = 0
    for md_path in files:
        for lineno, target, reason in check_file(
            md_path, args.root, anchor_cache
        ):
            rel = os.path.relpath(md_path, args.root)
            print(f"{rel}:{lineno}: {reason} -> {target}")
            total_broken += 1

    if total_broken:
        print(f"{total_broken} broken link(s) in {len(files)} file(s)")
        return 1
    print(
        f"OK: {len(files)} markdown file(s), "
        "no broken relative links or anchors"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
