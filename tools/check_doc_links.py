#!/usr/bin/env python3
"""Validate relative links in the repo's Markdown files.

Scans every tracked *.md file (or the files given on the command
line), extracts inline Markdown links and images, and checks that
each relative target exists. External schemes (http, https, mailto)
and pure in-page anchors are skipped; a `path#anchor` target is
checked for the file part only. Exits non-zero listing every broken
link, so CI catches documentation rot.

Standard library only - runs on any python3.
"""

import argparse
import os
import re
import sys

# Inline link/image: [text](target) - stops at the first unescaped
# closing paren, which is fine for the plain paths this repo uses.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root):
    """All .md files under *root*, skipping VCS and build dirs."""
    skip_dirs = {".git", "build", "node_modules", ".cache"}
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in skip_dirs]
        for name in filenames:
            if name.endswith(".md"):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def check_file(md_path, root):
    """Return a list of (line_number, target) broken links."""
    broken = []
    base = os.path.dirname(md_path)
    with open(md_path, encoding="utf-8", errors="replace") as fh:
        for lineno, line in enumerate(fh, start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_SCHEMES):
                    continue
                if target.startswith("#"):
                    continue  # in-page anchor
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                # Leading "/" means repo-root-relative in this repo's
                # docs; everything else is relative to the file.
                if path_part.startswith("/"):
                    resolved = os.path.join(root, path_part.lstrip("/"))
                else:
                    resolved = os.path.join(base, path_part)
                if not os.path.exists(resolved):
                    broken.append((lineno, target))
    return broken


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="*",
        help="markdown files to check (default: every .md in --root)",
    )
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root for absolute links and the default scan",
    )
    args = parser.parse_args()

    files = args.files or markdown_files(args.root)
    total_broken = 0
    for md_path in files:
        for lineno, target in check_file(md_path, args.root):
            rel = os.path.relpath(md_path, args.root)
            print(f"{rel}:{lineno}: broken link -> {target}")
            total_broken += 1

    if total_broken:
        print(f"{total_broken} broken link(s) in {len(files)} file(s)")
        return 1
    print(f"OK: {len(files)} markdown file(s), no broken relative links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
