#!/usr/bin/env python3
"""Plot CSV traces and observability JSON exported by the simulator.

Accepts both the legacy header-only CSVs and the current exports that
carry a leading `# pcstall-<kind>-csv v<N>` schema comment (lines
starting with '#' are skipped). Run traces can come either from a live
run (`sim::writeRunTraceCsv`, e.g. `examples/custom_workload
--trace-csv`) or from a recorded epoch trace via
`trace_inspect csv run.pctrace > run.csv`.

The `metrics` kind takes the observability JSON instead: either a
pcstall-metrics-v1 snapshot (--metrics-out) or a pcstall-timeline-v1
Chrome trace (--timeline-out), auto-detected, and renders a
frequency-residency panel next to the prediction-error distribution
(docs/observability.md).

Requires matplotlib.
"""

import argparse
import csv
import json
import sys
from collections import defaultdict

EXAMPLES = """\
examples:
  # frequency / work per epoch from a live-run export
  plot_traces.py run trace.csv -o run.png

  # same, from a recorded epoch trace
  trace_inspect csv run.pctrace > run.csv
  plot_traces.py run run.csv

  # per-domain sensitivity profile (cf. paper Fig 6)
  plot_traces.py prof profile.csv -o profile.png

  # residency + prediction error from an observability snapshot
  fig15_ed2p --metrics-out metrics.json
  plot_traces.py metrics metrics.json -o obs.png
"""


def load(path):
    """Load a CSV, skipping '#' comment lines (schema-version header)."""
    with open(path) as f:
        rows = (line for line in f if not line.lstrip().startswith("#"))
        return list(csv.DictReader(rows))


def check_columns(rows, required, path):
    if not rows:
        sys.exit(f"error: {path}: no data rows")
    missing = sorted(required - set(rows[0]))
    if missing:
        sys.exit(
            f"error: {path}: missing column(s) {', '.join(missing)} "
            f"(is this the right CSV kind?)"
        )


def plot_run(rows, out):
    import matplotlib.pyplot as plt

    domains = defaultdict(lambda: ([], [], []))
    for r in rows:
        t, f, c = domains[int(r["domain"])]
        t.append(float(r["epoch_us"]))
        f.append(float(r["freq_ghz"]))
        c.append(float(r["committed"]))

    fig, (ax_f, ax_c) = plt.subplots(2, 1, sharex=True, figsize=(10, 6))
    for d, (t, f, c) in sorted(domains.items()):
        ax_f.step(t, f, where="post", label=f"domain {d}", alpha=0.7)
        ax_c.plot(t, c, alpha=0.7)
    ax_f.set_ylabel("frequency (GHz)")
    ax_f.legend(loc="upper right", fontsize="small")
    ax_c.set_ylabel("instructions / epoch")
    ax_c.set_xlabel("time (us)")
    fig.suptitle("PCSTALL run trace")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_profile(rows, out):
    import matplotlib.pyplot as plt

    domains = defaultdict(lambda: ([], []))
    for r in rows:
        t, s = domains[int(r["domain"])]
        t.append(float(r["epoch_us"]))
        s.append(float(r["sensitivity"]))

    fig, ax = plt.subplots(figsize=(10, 4))
    for d, (t, s) in sorted(domains.items()):
        ax.plot(t, s, label=f"domain {d}", alpha=0.7)
    ax.set_xlabel("time (us)")
    ax.set_ylabel("sensitivity (instr/GHz)")
    ax.legend(loc="upper right", fontsize="small")
    fig.suptitle("Frequency-sensitivity profile (cf. paper Fig 6)")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def residency_from_metrics(doc):
    """[(state label, share)] from dvfs.residency.sNN counters."""
    residency = {
        name.rsplit(".", 1)[-1]: v
        for name, v in doc.get("counters", {}).items()
        if name.startswith("dvfs.residency.")
    }
    total = sum(residency.values())
    return [
        (state, v / total if total else 0.0)
        for state, v in sorted(residency.items())
    ]


def residency_from_timeline(doc):
    """[(GHz label, share)] by summing span durations per frequency.

    Epoch spans are named after the domain's operating frequency
    ("1.40 GHz"), so grouping X events by name recovers residency in
    simulated time rather than epoch counts.
    """
    by_freq = defaultdict(float)
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "X" and ev.get("name", "").endswith("GHz"):
            by_freq[ev["name"]] += float(ev.get("dur", 0.0))
    total = sum(by_freq.values())
    return [
        (freq, dur / total if total else 0.0)
        for freq, dur in sorted(by_freq.items())
    ]


def plot_metrics(doc, out, path):
    import matplotlib.pyplot as plt

    is_timeline = "traceEvents" in doc
    if is_timeline:
        residency = residency_from_timeline(doc)
        err = None
    else:
        if doc.get("schema") != "pcstall-metrics-v1":
            sys.exit(
                f"error: {path}: neither a pcstall-metrics-v1 snapshot "
                f"nor a Chrome-trace timeline"
            )
        residency = residency_from_metrics(doc)
        err = doc.get("histograms", {}).get("predict.error_pct")

    fig, (ax_r, ax_e) = plt.subplots(1, 2, figsize=(11, 4))

    if residency:
        labels = [s for s, _ in residency]
        shares = [100.0 * v for _, v in residency]
        ax_r.bar(range(len(labels)), shares, color="tab:blue", alpha=0.8)
        ax_r.set_xticks(range(len(labels)))
        ax_r.set_xticklabels(labels, rotation=45, fontsize="small")
        ax_r.set_ylabel(
            "simulated-time share (%)" if is_timeline
            else "domain-epoch share (%)"
        )
    else:
        ax_r.text(0.5, 0.5, "no residency data", ha="center", va="center")
    ax_r.set_title("V/f residency")

    if err and err.get("count"):
        edges = [b[0] for b in err["buckets"]]
        counts = [b[1] for b in err["buckets"]]
        ax_e.bar(
            range(len(edges)), counts, color="tab:orange", alpha=0.8
        )
        ticks = range(0, len(edges), max(1, len(edges) // 8))
        ax_e.set_xticks(list(ticks))
        ax_e.set_xticklabels(
            [f"{edges[i]:.3g}" for i in ticks], fontsize="small"
        )
        ax_e.set_xlabel("prediction error (%, bucket upper edge)")
        ax_e.set_ylabel("epochs")
        for p in ("p50", "p95", "p99"):
            ax_e.axvline(
                next(
                    (i for i, e in enumerate(edges) if e >= err[p]),
                    len(edges) - 1,
                ),
                color="gray",
                linestyle="--",
                linewidth=0.8,
            )
        ax_e.set_title(
            f"prediction error  p50={err['p50']:.2f}%  "
            f"p95={err['p95']:.2f}%  p99={err['p99']:.2f}%"
        )
    else:
        ax_e.text(
            0.5,
            0.5,
            "timeline input carries no\nprediction-error histogram"
            if is_timeline
            else "no predict.error_pct samples",
            ha="center",
            va="center",
        )
        ax_e.set_title("prediction error")

    fig.suptitle("PCSTALL observability snapshot")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        epilog=EXAMPLES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "kind",
        choices=("run", "prof", "metrics"),
        help="input kind: 'run' = per-epoch run trace CSV, "
        "'prof' = sensitivity profile CSV, 'metrics' = observability "
        "JSON (metrics snapshot or timeline, auto-detected)",
    )
    parser.add_argument("csv", help="input file")
    parser.add_argument(
        "-o",
        "--out",
        default="trace.png",
        help="output image path (default: %(default)s)",
    )
    args = parser.parse_args()

    if args.kind == "metrics":
        try:
            with open(args.csv) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            sys.exit(f"error: {args.csv}: {e}")
        plot_metrics(doc, args.out, args.csv)
        return 0

    rows = load(args.csv)
    if args.kind == "run":
        check_columns(
            rows, {"epoch_us", "domain", "freq_ghz", "committed"}, args.csv
        )
        plot_run(rows, args.out)
    else:
        check_columns(
            rows, {"epoch_us", "domain", "sensitivity"}, args.csv
        )
        plot_profile(rows, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
