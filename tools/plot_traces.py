#!/usr/bin/env python3
"""Plot CSV traces exported by the simulator.

Usage:
  plot_traces.py run   trace.csv   [out.png]   # frequency/work per epoch
  plot_traces.py prof  profile.csv [out.png]   # sensitivity profiles

The CSVs come from sim::writeRunTraceCsv / sim::writeProfileCsv (see
`examples/custom_workload --trace-csv`). Requires matplotlib.
"""

import csv
import sys
from collections import defaultdict


def load(path):
    with open(path) as f:
        return list(csv.DictReader(f))


def plot_run(rows, out):
    import matplotlib.pyplot as plt

    domains = defaultdict(lambda: ([], [], []))
    for r in rows:
        t, f, c = domains[int(r["domain"])]
        t.append(float(r["epoch_us"]))
        f.append(float(r["freq_ghz"]))
        c.append(float(r["committed"]))

    fig, (ax_f, ax_c) = plt.subplots(2, 1, sharex=True, figsize=(10, 6))
    for d, (t, f, c) in sorted(domains.items()):
        ax_f.step(t, f, where="post", label=f"domain {d}", alpha=0.7)
        ax_c.plot(t, c, alpha=0.7)
    ax_f.set_ylabel("frequency (GHz)")
    ax_f.legend(loc="upper right", fontsize="small")
    ax_c.set_ylabel("instructions / epoch")
    ax_c.set_xlabel("time (us)")
    fig.suptitle("PCSTALL run trace")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_profile(rows, out):
    import matplotlib.pyplot as plt

    domains = defaultdict(lambda: ([], []))
    for r in rows:
        t, s = domains[int(r["domain"])]
        t.append(float(r["epoch_us"]))
        s.append(float(r["sensitivity"]))

    fig, ax = plt.subplots(figsize=(10, 4))
    for d, (t, s) in sorted(domains.items()):
        ax.plot(t, s, label=f"domain {d}", alpha=0.7)
    ax.set_xlabel("time (us)")
    ax.set_ylabel("sensitivity (instr/GHz)")
    ax.legend(loc="upper right", fontsize="small")
    fig.suptitle("Frequency-sensitivity profile (cf. paper Fig 6)")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    if len(sys.argv) < 3 or sys.argv[1] not in ("run", "prof"):
        print(__doc__)
        return 1
    rows = load(sys.argv[2])
    out = sys.argv[3] if len(sys.argv) > 3 else "trace.png"
    if sys.argv[1] == "run":
        plot_run(rows, out)
    else:
        plot_profile(rows, out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
