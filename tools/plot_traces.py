#!/usr/bin/env python3
"""Plot CSV traces exported by the simulator.

Accepts both the legacy header-only CSVs and the current exports that
carry a leading `# pcstall-<kind>-csv v<N>` schema comment (lines
starting with '#' are skipped). Run traces can come either from a live
run (`sim::writeRunTraceCsv`, e.g. `examples/custom_workload
--trace-csv`) or from a recorded epoch trace via
`trace_inspect csv run.pctrace > run.csv`.

Requires matplotlib.
"""

import argparse
import csv
import sys
from collections import defaultdict

EXAMPLES = """\
examples:
  # frequency / work per epoch from a live-run export
  plot_traces.py run trace.csv -o run.png

  # same, from a recorded epoch trace
  trace_inspect csv run.pctrace > run.csv
  plot_traces.py run run.csv

  # per-domain sensitivity profile (cf. paper Fig 6)
  plot_traces.py prof profile.csv -o profile.png
"""


def load(path):
    """Load a CSV, skipping '#' comment lines (schema-version header)."""
    with open(path) as f:
        rows = (line for line in f if not line.lstrip().startswith("#"))
        return list(csv.DictReader(rows))


def check_columns(rows, required, path):
    if not rows:
        sys.exit(f"error: {path}: no data rows")
    missing = sorted(required - set(rows[0]))
    if missing:
        sys.exit(
            f"error: {path}: missing column(s) {', '.join(missing)} "
            f"(is this the right CSV kind?)"
        )


def plot_run(rows, out):
    import matplotlib.pyplot as plt

    domains = defaultdict(lambda: ([], [], []))
    for r in rows:
        t, f, c = domains[int(r["domain"])]
        t.append(float(r["epoch_us"]))
        f.append(float(r["freq_ghz"]))
        c.append(float(r["committed"]))

    fig, (ax_f, ax_c) = plt.subplots(2, 1, sharex=True, figsize=(10, 6))
    for d, (t, f, c) in sorted(domains.items()):
        ax_f.step(t, f, where="post", label=f"domain {d}", alpha=0.7)
        ax_c.plot(t, c, alpha=0.7)
    ax_f.set_ylabel("frequency (GHz)")
    ax_f.legend(loc="upper right", fontsize="small")
    ax_c.set_ylabel("instructions / epoch")
    ax_c.set_xlabel("time (us)")
    fig.suptitle("PCSTALL run trace")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_profile(rows, out):
    import matplotlib.pyplot as plt

    domains = defaultdict(lambda: ([], []))
    for r in rows:
        t, s = domains[int(r["domain"])]
        t.append(float(r["epoch_us"]))
        s.append(float(r["sensitivity"]))

    fig, ax = plt.subplots(figsize=(10, 4))
    for d, (t, s) in sorted(domains.items()):
        ax.plot(t, s, label=f"domain {d}", alpha=0.7)
    ax.set_xlabel("time (us)")
    ax.set_ylabel("sensitivity (instr/GHz)")
    ax.legend(loc="upper right", fontsize="small")
    fig.suptitle("Frequency-sensitivity profile (cf. paper Fig 6)")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        epilog=EXAMPLES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "kind",
        choices=("run", "prof"),
        help="CSV kind: 'run' = per-epoch run trace, "
        "'prof' = sensitivity profile",
    )
    parser.add_argument("csv", help="input CSV file")
    parser.add_argument(
        "-o",
        "--out",
        default="trace.png",
        help="output image path (default: %(default)s)",
    )
    args = parser.parse_args()

    rows = load(args.csv)
    if args.kind == "run":
        check_columns(
            rows, {"epoch_us", "domain", "freq_ghz", "committed"}, args.csv
        )
        plot_run(rows, args.out)
    else:
        check_columns(
            rows, {"epoch_us", "domain", "sensitivity"}, args.csv
        )
        plot_profile(rows, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
