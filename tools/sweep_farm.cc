/**
 * @file
 * sweep_farm: multi-process farm driver for the crash-resumable sweep
 * layer (docs/sweep_farm.md).
 *
 *   sweep_farm --workers N --store DIR [--max-restarts K]
 *              [--log-dir DIR] -- <harness> [harness flags...]
 *
 * Spawns N copies of the given figure harness, worker i running with
 * `--store DIR --shard i/N` appended to its command line so each
 * computes a disjoint slice of the sweep grid and checkpoints every
 * finished cell into the shared content-addressed store. Workers that
 * die - crash, OOM kill, or a non-zero exit - are restarted (at most
 * --max-restarts times each); a restarted worker recomputes only the
 * cells its predecessor had not yet stored. Worker output goes to
 * <log-dir>/worker-<i>.log.
 *
 * When every shard has finished, the harness runs once more with
 * --store DIR and no --shard, inheriting the farm's stdout: it reads
 * every cell back from the store (computing any a worker never
 * reached) and emits the merged tables/CSV through the normal
 * submission-order aggregation path - byte-identical to a
 * single-process run of the same command.
 */

#include <sys/types.h>
#include <sys/wait.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "harness.hh"

using namespace pcstall;

namespace
{

struct FarmOptions
{
    unsigned workers = 2;
    unsigned maxRestarts = 2;
    std::string storeDir;
    std::string logDir;
    /** The harness command (argv after "--"). */
    std::vector<std::string> command;
};

/** One worker slot: a shard index plus its process bookkeeping. */
struct Worker
{
    unsigned shard = 0;
    pid_t pid = -1;
    unsigned restarts = 0;
    bool done = false;
    int exitCode = 0;
};

std::string
usage()
{
    return "usage: sweep_farm --workers N --store DIR "
           "[--max-restarts K] [--log-dir DIR] -- <harness> [args...]";
}

/**
 * Spawn one process running @p argv_strings, stdout+stderr appended
 * to @p log_path (empty = inherit the farm's). Returns the pid, or -1
 * with a warn() on failure.
 */
pid_t
spawn(const std::vector<std::string> &argv_strings,
      const std::string &log_path)
{
    std::vector<char *> argv;
    argv.reserve(argv_strings.size() + 1);
    for (const std::string &arg : argv_strings)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        warn(std::string("fork: ") + std::strerror(errno));
        return -1;
    }
    if (pid > 0)
        return pid;

    // Child. Only async-signal-safe calls until execvp.
    if (!log_path.empty()) {
        const int fd = ::open(log_path.c_str(),
                              O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd >= 0) {
            ::dup2(fd, STDOUT_FILENO);
            ::dup2(fd, STDERR_FILENO);
            if (fd > STDERR_FILENO)
                ::close(fd);
        }
    }
    ::execvp(argv[0], argv.data());
    // execvp only returns on failure; 127 is the conventional
    // command-not-found code the parent will report.
    const char msg[] = "sweep_farm: cannot exec harness\n";
    ::write(STDERR_FILENO, msg, sizeof(msg) - 1);
    ::_exit(127);
}

std::vector<std::string>
workerCommand(const FarmOptions &opts, unsigned shard)
{
    std::vector<std::string> cmd = opts.command;
    cmd.push_back("--store");
    cmd.push_back(opts.storeDir);
    cmd.push_back("--shard");
    cmd.push_back(std::to_string(shard) + "/" +
                  std::to_string(opts.workers));
    return cmd;
}

std::string
describeExit(int status)
{
    if (WIFSIGNALED(status)) {
        return std::string("killed by signal ") +
               std::to_string(WTERMSIG(status));
    }
    return "exit code " + std::to_string(WEXITSTATUS(status));
}

int
farmMain(const FarmOptions &opts)
{
    std::error_code ec;
    std::filesystem::create_directories(opts.logDir, ec);

    std::vector<Worker> workers(opts.workers);
    for (unsigned i = 0; i < opts.workers; ++i)
        workers[i].shard = i;

    const auto logPath = [&](const Worker &w) {
        return opts.logDir + "/worker-" + std::to_string(w.shard) +
               ".log";
    };
    const auto launch = [&](Worker &w) {
        w.pid = spawn(workerCommand(opts, w.shard), logPath(w));
        if (w.pid < 0) {
            w.done = true;
            w.exitCode = 1;
            return;
        }
        inform("worker " + std::to_string(w.shard) + "/" +
               std::to_string(opts.workers) + " started (pid " +
               std::to_string(w.pid) + ", log " + logPath(w) + ")");
    };

    for (Worker &w : workers)
        launch(w);

    // Reap until every shard is done, restarting dead workers up to
    // the bound. Restarts are cheap by construction: the successor
    // resumes from the store, recomputing only unfinished cells.
    unsigned running = 0;
    for (const Worker &w : workers)
        running += !w.done;
    while (running > 0) {
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, 0);
        if (pid < 0) {
            if (errno == EINTR)
                continue;
            warn(std::string("waitpid: ") + std::strerror(errno));
            break;
        }
        for (Worker &w : workers) {
            if (w.done || w.pid != pid)
                continue;
            if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
                inform("worker " + std::to_string(w.shard) +
                       " finished");
                w.done = true;
                --running;
            } else if (w.restarts < opts.maxRestarts) {
                ++w.restarts;
                warn("worker " + std::to_string(w.shard) + " died (" +
                     describeExit(status) + "); restart " +
                     std::to_string(w.restarts) + "/" +
                     std::to_string(opts.maxRestarts));
                launch(w);
                if (w.done)
                    --running;
            } else {
                warn("worker " + std::to_string(w.shard) +
                     " gave up (" + describeExit(status) +
                     " after " + std::to_string(w.restarts) +
                     " restart(s))");
                w.done = true;
                w.exitCode = 1;
                --running;
            }
            break;
        }
    }

    // Merge pass: the same harness, unsharded, stdout inherited. It
    // replays every stored cell in submission order (and computes any
    // stragglers a failed shard left behind), so its output is
    // byte-identical to an uninterrupted single-process run.
    std::vector<std::string> merge = opts.command;
    merge.push_back("--store");
    merge.push_back(opts.storeDir);
    inform("merge pass");
    const pid_t merge_pid = spawn(merge, "");
    if (merge_pid < 0)
        return 1;
    int status = 0;
    while (::waitpid(merge_pid, &status, 0) < 0) {
        if (errno != EINTR) {
            warn(std::string("waitpid: ") + std::strerror(errno));
            return 1;
        }
    }
    int rc = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
    for (const Worker &w : workers) {
        if (w.exitCode != 0 && rc == 0) {
            // The merge recomputed the lost shard's cells itself, but
            // a permanently failing worker still signals trouble.
            warn("a worker shard failed permanently; merge output is "
                 "complete but see worker logs");
        }
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&]() -> int {
        FarmOptions opts;
        int i = 1;
        for (; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--") {
                ++i;
                break;
            }
            const auto value = [&]() -> std::string {
                fatalIf(i + 1 >= argc, arg + " needs a value\n" +
                        usage());
                return argv[++i];
            };
            if (arg == "--workers") {
                opts.workers = static_cast<unsigned>(
                    std::strtoul(value().c_str(), nullptr, 10));
            } else if (arg == "--max-restarts") {
                opts.maxRestarts = static_cast<unsigned>(
                    std::strtoul(value().c_str(), nullptr, 10));
            } else if (arg == "--store") {
                opts.storeDir = value();
            } else if (arg == "--log-dir") {
                opts.logDir = value();
            } else if (arg == "--help" || arg == "-h") {
                inform(usage());
                return 0;
            } else {
                fatal("unknown option " + arg + "\n" + usage());
            }
        }
        for (; i < argc; ++i)
            opts.command.push_back(argv[i]);

        fatalIf(opts.command.empty(),
                "no harness command after --\n" + usage());
        fatalIf(opts.storeDir.empty(),
                "--store DIR is required (workers share results "
                "through it)\n" + usage());
        fatalIf(opts.workers < 1, "--workers must be >= 1");
        if (opts.logDir.empty())
            opts.logDir = opts.storeDir;
        return farmMain(opts);
    });
}
