/**
 * @file
 * sweep_farm: multi-process farm driver for the crash-resumable sweep
 * layer (docs/sweep_farm.md).
 *
 *   sweep_farm --workers N --store DIR [--max-restarts K]
 *              [--log-dir DIR] -- <harness> [harness flags...]
 *   sweep_farm --status --store DIR [--log-dir DIR]
 *
 * Spawns N copies of the given figure harness, worker i running with
 * `--store DIR --shard i/N` appended to its command line so each
 * computes a disjoint slice of the sweep grid and checkpoints every
 * finished cell into the shared content-addressed store. Workers that
 * die - crash, OOM kill, or a non-zero exit - are restarted (at most
 * --max-restarts times each); a restarted worker recomputes only the
 * cells its predecessor had not yet stored. Worker output goes to
 * <log-dir>/worker-<i>.log.
 *
 * When every shard has finished, the harness runs once more with
 * --store DIR and no --shard, inheriting the farm's stdout: it reads
 * every cell back from the store (computing any a worker never
 * reached) and emits the merged tables/CSV through the normal
 * submission-order aggregation path - byte-identical to a
 * single-process run of the same command.
 *
 * While workers run, the farm refreshes one heartbeat file per worker
 * (<log-dir>/worker-<i>.hb, atomically replaced about once a second)
 * recording shard, pid, state, restart count and timestamps. A second
 * invocation with --status reads the heartbeats back and prints a
 * live summary - per-worker state, heartbeat age, log growth, and the
 * shared store's checkpointed-cell count - without touching the
 * running farm.
 */

#include <sys/types.h>
#include <sys/wait.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "harness.hh"
#include "store/atomic_file.hh"

using namespace pcstall;

namespace
{

struct FarmOptions
{
    unsigned workers = 2;
    unsigned maxRestarts = 2;
    std::string storeDir;
    std::string logDir;
    /** The harness command (argv after "--"). */
    std::vector<std::string> command;
};

/** One worker slot: a shard index plus its process bookkeeping. */
struct Worker
{
    unsigned shard = 0;
    pid_t pid = -1;
    unsigned restarts = 0;
    bool done = false;
    int exitCode = 0;
    std::time_t started = 0;
};

std::string
usage()
{
    return "usage: sweep_farm --workers N --store DIR "
           "[--max-restarts K] [--log-dir DIR] -- <harness> "
           "[args...]\n"
           "       sweep_farm --status --store DIR [--log-dir DIR]";
}

std::string
heartbeatPath(const std::string &log_dir, unsigned shard)
{
    return log_dir + "/worker-" + std::to_string(shard) + ".hb";
}

/**
 * Atomically replace a worker's heartbeat file. key=value lines so
 * --status (and shell scripts) can read it with no parser; the write
 * goes through the store's atomic publication, so a concurrent
 * --status never sees a torn heartbeat.
 */
void
writeHeartbeat(const FarmOptions &opts, const Worker &w)
{
    const char *state = w.done ? (w.exitCode == 0 ? "done" : "failed")
                               : "running";
    std::string body = "schema=pcstall-farm-heartbeat-v1\n";
    body += "shard=" + std::to_string(w.shard) + "\n";
    body += "workers=" + std::to_string(opts.workers) + "\n";
    body += "pid=" + std::to_string(w.pid) + "\n";
    body += std::string("state=") + state + "\n";
    body += "restarts=" + std::to_string(w.restarts) + "\n";
    body += "started_unix=" + std::to_string(w.started) + "\n";
    body += "updated_unix=" +
        std::to_string(std::time(nullptr)) + "\n";
    const std::string err = store::writeFileAtomic(
        heartbeatPath(opts.logDir, w.shard), body);
    if (!err.empty())
        warnLimited("farm-heartbeat", "heartbeat: " + err);
}

/**
 * Spawn one process running @p argv_strings, stdout+stderr appended
 * to @p log_path (empty = inherit the farm's). Returns the pid, or -1
 * with a warn() on failure.
 */
pid_t
spawn(const std::vector<std::string> &argv_strings,
      const std::string &log_path)
{
    std::vector<char *> argv;
    argv.reserve(argv_strings.size() + 1);
    for (const std::string &arg : argv_strings)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        warn(std::string("fork: ") + std::strerror(errno));
        return -1;
    }
    if (pid > 0)
        return pid;

    // Child. Only async-signal-safe calls until execvp.
    if (!log_path.empty()) {
        const int fd = ::open(log_path.c_str(),
                              O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd >= 0) {
            ::dup2(fd, STDOUT_FILENO);
            ::dup2(fd, STDERR_FILENO);
            if (fd > STDERR_FILENO)
                ::close(fd);
        }
    }
    ::execvp(argv[0], argv.data());
    // execvp only returns on failure; 127 is the conventional
    // command-not-found code the parent will report.
    const char msg[] = "sweep_farm: cannot exec harness\n";
    ::write(STDERR_FILENO, msg, sizeof(msg) - 1);
    ::_exit(127);
}

std::vector<std::string>
workerCommand(const FarmOptions &opts, unsigned shard)
{
    std::vector<std::string> cmd = opts.command;
    cmd.push_back("--store");
    cmd.push_back(opts.storeDir);
    cmd.push_back("--shard");
    cmd.push_back(std::to_string(shard) + "/" +
                  std::to_string(opts.workers));
    return cmd;
}

std::string
describeExit(int status)
{
    if (WIFSIGNALED(status)) {
        return std::string("killed by signal ") +
               std::to_string(WTERMSIG(status));
    }
    return "exit code " + std::to_string(WEXITSTATUS(status));
}

int
farmMain(const FarmOptions &opts)
{
    std::error_code ec;
    std::filesystem::create_directories(opts.logDir, ec);

    std::vector<Worker> workers(opts.workers);
    for (unsigned i = 0; i < opts.workers; ++i)
        workers[i].shard = i;

    const auto logPath = [&](const Worker &w) {
        return opts.logDir + "/worker-" + std::to_string(w.shard) +
               ".log";
    };
    const auto launch = [&](Worker &w) {
        w.started = std::time(nullptr);
        w.pid = spawn(workerCommand(opts, w.shard), logPath(w));
        if (w.pid < 0) {
            w.done = true;
            w.exitCode = 1;
            writeHeartbeat(opts, w);
            return;
        }
        inform("worker " + std::to_string(w.shard) + "/" +
               std::to_string(opts.workers) + " started (pid " +
               std::to_string(w.pid) + ", log " + logPath(w) + ")");
        writeHeartbeat(opts, w);
    };

    for (Worker &w : workers)
        launch(w);

    // Reap until every shard is done, restarting dead workers up to
    // the bound. Restarts are cheap by construction: the successor
    // resumes from the store, recomputing only unfinished cells. The
    // wait is non-blocking so the farm can refresh the worker
    // heartbeat files (read by `sweep_farm --status`) about once a
    // second while everything is alive.
    unsigned running = 0;
    for (const Worker &w : workers)
        running += !w.done;
    std::time_t last_beat = std::time(nullptr);
    while (running > 0) {
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid < 0 && errno != EINTR && errno != ECHILD) {
            warn(std::string("waitpid: ") + std::strerror(errno));
            break;
        }
        if (pid <= 0) {
            const std::time_t now = std::time(nullptr);
            if (now != last_beat) {
                last_beat = now;
                for (const Worker &w : workers) {
                    if (!w.done)
                        writeHeartbeat(opts, w);
                }
            }
            ::usleep(100'000);
            continue;
        }
        for (Worker &w : workers) {
            if (w.done || w.pid != pid)
                continue;
            if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
                inform("worker " + std::to_string(w.shard) +
                       " finished");
                w.done = true;
                --running;
                writeHeartbeat(opts, w);
            } else if (w.restarts < opts.maxRestarts) {
                ++w.restarts;
                warn("worker " + std::to_string(w.shard) + " died (" +
                     describeExit(status) + "); restart " +
                     std::to_string(w.restarts) + "/" +
                     std::to_string(opts.maxRestarts));
                launch(w);
                if (w.done)
                    --running;
            } else {
                warn("worker " + std::to_string(w.shard) +
                     " gave up (" + describeExit(status) +
                     " after " + std::to_string(w.restarts) +
                     " restart(s))");
                w.done = true;
                w.exitCode = 1;
                --running;
                writeHeartbeat(opts, w);
            }
            break;
        }
    }

    // Merge pass: the same harness, unsharded, stdout inherited. It
    // replays every stored cell in submission order (and computes any
    // stragglers a failed shard left behind), so its output is
    // byte-identical to an uninterrupted single-process run.
    std::vector<std::string> merge = opts.command;
    merge.push_back("--store");
    merge.push_back(opts.storeDir);
    inform("merge pass");
    const pid_t merge_pid = spawn(merge, "");
    if (merge_pid < 0)
        return 1;
    int status = 0;
    while (::waitpid(merge_pid, &status, 0) < 0) {
        if (errno != EINTR) {
            warn(std::string("waitpid: ") + std::strerror(errno));
            return 1;
        }
    }
    int rc = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
    for (const Worker &w : workers) {
        if (w.exitCode != 0 && rc == 0) {
            // The merge recomputed the lost shard's cells itself, but
            // a permanently failing worker still signals trouble.
            warn("a worker shard failed permanently; merge output is "
                 "complete but see worker logs");
        }
    }
    return rc;
}

/**
 * `sweep_farm --status`: summarize a farm (running or finished) from
 * its heartbeat files and the shared store, without disturbing it.
 */
int
statusMain(const FarmOptions &opts)
{
    struct Beat
    {
        std::map<std::string, std::string> kv;
    };
    std::map<unsigned, Beat> beats;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(opts.logDir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("worker-", 0) != 0 ||
            entry.path().extension() != ".hb")
            continue;
        Beat beat;
        std::ifstream in(entry.path());
        std::string line;
        while (std::getline(in, line)) {
            const std::size_t eq = line.find('=');
            if (eq != std::string::npos)
                beat.kv[line.substr(0, eq)] = line.substr(eq + 1);
        }
        const unsigned shard = static_cast<unsigned>(std::strtoul(
            beat.kv["shard"].c_str(), nullptr, 10));
        beats[shard] = std::move(beat);
    }
    if (ec) {
        warn(opts.logDir + ": " + ec.message());
        return 1;
    }
    if (beats.empty()) {
        std::printf("no worker heartbeats under %s\n",
                    opts.logDir.c_str());
        return 1;
    }

    const std::time_t now = std::time(nullptr);
    std::printf("%-6s %-8s %-8s %-9s %-8s %-10s\n", "shard", "pid",
                "state", "restarts", "beat_age", "log_bytes");
    unsigned running = 0;
    unsigned failed = 0;
    for (const auto &[shard, beat] : beats) {
        const auto field = [&](const char *key) -> std::string {
            const auto it = beat.kv.find(key);
            return it == beat.kv.end() ? "?" : it->second;
        };
        const std::string state = field("state");
        running += state == "running" ? 1 : 0;
        failed += state == "failed" ? 1 : 0;
        const std::time_t updated = static_cast<std::time_t>(
            std::strtoll(field("updated_unix").c_str(), nullptr, 10));
        std::uintmax_t log_bytes = std::filesystem::file_size(
            opts.logDir + "/worker-" + std::to_string(shard) +
                ".log",
            ec);
        if (ec)
            log_bytes = 0;
        std::printf("%-6u %-8s %-8s %-9s %-8s %-10ju\n", shard,
                    field("pid").c_str(), state.c_str(),
                    field("restarts").c_str(),
                    (updated > 0
                         ? std::to_string(std::max<std::time_t>(
                               0, now - updated)) + "s"
                         : "?")
                        .c_str(),
                    log_bytes);
    }

    std::size_t cells = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(opts.storeDir, ec)) {
        if (!ec && entry.path().extension() == ".pcres")
            ++cells;
    }
    std::printf("%zu worker(s): %u running, %u failed; "
                "%zu cell(s) checkpointed in %s\n",
                beats.size(), running, failed, cells,
                opts.storeDir.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&]() -> int {
        FarmOptions opts;
        bool status = false;
        int i = 1;
        for (; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--") {
                ++i;
                break;
            }
            const auto value = [&]() -> std::string {
                fatalIf(i + 1 >= argc, arg + " needs a value\n" +
                        usage());
                return argv[++i];
            };
            if (arg == "--workers") {
                opts.workers = static_cast<unsigned>(
                    std::strtoul(value().c_str(), nullptr, 10));
            } else if (arg == "--max-restarts") {
                opts.maxRestarts = static_cast<unsigned>(
                    std::strtoul(value().c_str(), nullptr, 10));
            } else if (arg == "--store") {
                opts.storeDir = value();
            } else if (arg == "--log-dir") {
                opts.logDir = value();
            } else if (arg == "--status") {
                status = true;
            } else if (arg == "--help" || arg == "-h") {
                inform(usage());
                return 0;
            } else {
                fatal("unknown option " + arg + "\n" + usage());
            }
        }
        for (; i < argc; ++i)
            opts.command.push_back(argv[i]);

        fatalIf(opts.storeDir.empty(),
                "--store DIR is required (workers share results "
                "through it)\n" + usage());
        if (opts.logDir.empty())
            opts.logDir = opts.storeDir;
        if (status) {
            fatalIf(!opts.command.empty(),
                    "--status takes no harness command\n" + usage());
            return statusMain(opts);
        }
        fatalIf(opts.command.empty(),
                "no harness command after --\n" + usage());
        fatalIf(opts.workers < 1, "--workers must be >= 1");
        return farmMain(opts);
    });
}
