/**
 * @file
 * trace_inspect: the epoch-trace Swiss-army knife.
 *
 *   trace_inspect header  <trace>            dump meta + trailer
 *   trace_inspect stats   <trace>            per-epoch statistics
 *   trace_inspect csv     <trace>            export run-trace CSV
 *   trace_inspect diff    <a> <b>            compare two traces
 *   trace_inspect capture --workload W --controller C --out T [...]
 *                                            run live and record
 *   trace_inspect replay  <trace> [--controller C] [--csv-out F]
 *                                            re-drive a controller
 *   trace_inspect metrics <trace> [--controller C] [--out F]
 *                                            replay under the metrics
 *                                            registry and report
 *   trace_inspect library <dir> [list|verify|gc]
 *                                            inspect a --trace-cache
 *                                            replay library
 *
 * `capture` accepts every bench-harness option (--cus, --scale,
 * --epoch-us, --domain-cus, --seed, fault flags, ...). `replay`
 * rebuilds the captured controller from the trace meta (or any other
 * design via --controller), verifies its decisions against the
 * recorded ones when the names match, and reports the wall-clock
 * speedup over the captured live run. With --threads N (N > 1) the
 * replay is additionally re-driven N times concurrently on fresh
 * controllers and every outcome is checked for bit-identity - a
 * thread-safety/determinism self-test of the replay path. Exit
 * status: 0 on success / traces equal / replay deterministic, 1
 * otherwise.
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include <unistd.h>

#include "common/cli.hh"
#include "common/logging.hh"
#include "core/pcstall_controller.hh"
#include "obs/context.hh"
#include "obs/metrics.hh"
#include "dvfs/hierarchical.hh"
#include "dvfs/objective.hh"
#include "harness.hh"
#include "sim/parallel_executor.hh"
#include "sim/trace_export.hh"
#include "trace/format.hh"
#include "trace/library.hh"
#include "trace/replay.hh"
#include "trace/snapshot.hh"

using namespace pcstall;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: trace_inspect <command> [arguments]\n"
        "  header  <trace>                     dump meta + trailer\n"
        "  stats   <trace>                     per-epoch statistics\n"
        "  csv     <trace>                     export run-trace CSV\n"
        "  diff    <a> <b>                     compare two traces\n"
        "  capture --workload W --controller C --out T [bench opts]\n"
        "  replay  <trace> [--controller C] [--csv-out F]\n"
        "          [--pc-snapshot-out F] [--no-verify] [--quiet]\n"
        "          [--threads N]   N concurrent re-drives, all\n"
        "                          verified bit-identical\n"
        "  metrics <trace> [--controller C] [--out F]\n"
        "          replay with the metrics registry armed and print\n"
        "          the merged snapshot; --out writes it as JSON (or\n"
        "          Prometheus text with a .prom/.txt extension)\n"
        "  library <dir> [list|verify|gc]\n"
        "          inspect a --trace-cache library: `list` (default)\n"
        "          tabulates entries without decoding, `verify`\n"
        "          decodes every entry and quarantines corrupt ones\n"
        "          (exit 1 when any fail), `gc` removes orphan traces,\n"
        "          dangling sidecars and stale staging temps\n");
    return 2;
}

trace::TraceData
loadOrDie(const std::string &path)
{
    trace::TraceReadResult read = trace::readTraceFile(path);
    if (!read.ok())
        fatal(read.error);
    return std::move(*read.trace);
}

/** Index of @p freq in the captured V/f table (-1 when absent). */
int
stateOf(const trace::TraceMeta &meta, Freq freq)
{
    for (std::size_t i = 0; i < meta.vfStates.size(); ++i) {
        if (meta.vfStates[i].freq == freq)
            return static_cast<int>(i);
    }
    return -1;
}

/**
 * A controller reconstructed from a trace meta (or overridden by
 * name), together with the inner controller a hierarchical wrapper
 * delegates to. `use` points at the controller to drive.
 */
struct ReplayController
{
    std::unique_ptr<dvfs::DvfsController> inner;
    std::unique_ptr<dvfs::HierarchicalPowerManager> wrapper;
    dvfs::DvfsController *use = nullptr;
};

ReplayController
makeReplayController(const trace::TraceMeta &meta, std::string name)
{
    ReplayController out;
    bool capped = meta.hierarchical.enabled;
    // A recorded "NAME+CAP" controller replays as NAME wrapped in the
    // recorded power-cap manager.
    if (name.size() > 4 && name.substr(name.size() - 4) == "+CAP")
        name = name.substr(0, name.size() - 4);
    else if (name != meta.controller)
        capped = false; // explicit uncapped override

    const sim::RunConfig cfg = trace::runConfigFromMeta(meta);
    // makeController understands STATIC[n] too.
    out.inner = bench::makeController(name, cfg);
    out.use = out.inner.get();
    if (capped) {
        dvfs::HierarchicalConfig hier;
        hier.powerCap = meta.hierarchical.powerCap;
        hier.reviewEpochs = meta.hierarchical.reviewEpochs;
        hier.widenBelow = meta.hierarchical.widenBelow;
        out.wrapper = std::make_unique<dvfs::HierarchicalPowerManager>(
            *out.inner, hier);
        out.use = out.wrapper.get();
    }
    return out;
}

void
printMeta(const trace::TraceData &data)
{
    const trace::TraceMeta &m = data.meta;
    std::printf("workload:        %s\n", m.workload.c_str());
    std::printf("controller:      %s%s\n", m.controller.c_str(),
                m.hierarchical.enabled ? " (power-capped)" : "");
    std::printf("geometry:        %u CUs, %u wave slots/CU, "
                "%u CU(s)/domain (%u domains)\n",
                m.numCus, m.waveSlotsPerCu, m.cusPerDomain,
                m.numDomains());
    std::printf("epoch length:    %.3f us\n",
                static_cast<double>(m.epochLen) /
                    static_cast<double>(tickUs));
    std::printf("objective:       %s\n",
                dvfs::objectiveName(
                    static_cast<dvfs::Objective>(m.objective)));
    std::printf("nominal freq:    %.2f GHz (state %d of %zu)\n",
                freqGHzD(m.nominalFreq), stateOf(m, m.nominalFreq),
                m.vfStates.size());
    std::printf("V/f table:       ");
    for (const power::VfState &s : m.vfStates)
        std::printf("%.1f@%.2fV ", freqGHzD(s.freq), s.voltage);
    std::printf("\n");
    std::printf("faults:          telemetry=%s dvfs=%s storage=%s "
                "(seed %" PRIu64 ")\n",
                m.faults.telemetry.enabled ? "on" : "off",
                m.faults.dvfs.enabled ? "on" : "off",
                m.faults.storage.enabled ? "on" : "off",
                m.faults.seed);
    std::printf("sweeps recorded: %s\n",
                m.sweepNeed != 0 ? "yes" : "no");
    std::printf("pc snapshot:     %s\n",
                data.pcSnapshot.empty()
                    ? "absent"
                    : (std::to_string(data.pcSnapshot.tables.size()) +
                       " table(s) x " +
                       std::to_string(data.pcSnapshot.config.entries) +
                       " entries")
                          .c_str());
    std::printf("epochs:          %" PRIu64 " (%s)\n",
                data.trailer.frameCount,
                data.trailer.completed ? "run completed"
                                       : "hit the simulation wall");
    std::printf("instructions:    %" PRIu64 "\n",
                data.trailer.totalCommitted);
    std::printf("exec time:       %.3f us\n",
                static_cast<double>(data.trailer.lastCommitTick) /
                    static_cast<double>(tickUs));
    std::printf("capture wall:    %.1f ms\n",
                data.trailer.captureWallMs);
}

int
cmdHeader(const std::string &path)
{
    const trace::TraceData data = loadOrDie(path);
    printMeta(data);
    return 0;
}

int
cmdStats(const std::string &path)
{
    const trace::TraceData data = loadOrDie(path);
    printMeta(data);
    std::printf("\n%-8s %-12s %-10s %-10s %-8s %s\n", "epoch",
                "t_us", "instr", "waves", "changes", "mean_state");
    std::vector<std::uint64_t> residency(data.meta.vfStates.size(), 0);
    std::uint64_t transitions = 0;
    std::vector<std::size_t> prev_state(data.meta.numDomains(), 0);
    bool have_prev = false;
    for (std::size_t i = 0; i < data.frames.size(); ++i) {
        const trace::EpochFrame &f = data.frames[i];
        std::uint64_t active_waves = 0;
        for (const gpu::WaveEpochRecord &w : f.record.waves)
            active_waves += w.active ? 1 : 0;
        std::uint64_t changes = 0;
        double state_sum = 0.0;
        for (std::size_t d = 0; d < f.decisions.size(); ++d) {
            const std::size_t applied = f.decisions[d].applied;
            residency[applied] += 1;
            state_sum += static_cast<double>(applied);
            if (have_prev && applied != prev_state[d])
                ++changes;
            prev_state[d] = applied;
        }
        if (!f.decisions.empty())
            have_prev = true;
        transitions += changes;
        std::printf("%-8zu %-12.3f %-10" PRIu64 " %-10" PRIu64
                    " %-8" PRIu64 " %.2f\n",
                    i,
                    static_cast<double>(f.start) /
                        static_cast<double>(tickUs),
                    f.record.totalCommitted(), active_waves, changes,
                    f.decisions.empty()
                        ? 0.0
                        : state_sum /
                            static_cast<double>(f.decisions.size()));
    }
    std::printf("\ndomain-epoch V/f residency:\n");
    std::uint64_t total = 0;
    for (std::uint64_t r : residency)
        total += r;
    for (std::size_t s = 0; s < residency.size(); ++s) {
        if (residency[s] == 0)
            continue;
        std::printf("  %.1f GHz: %5.1f%%\n",
                    freqGHzD(data.meta.vfStates[s].freq),
                    total > 0 ? 100.0 * static_cast<double>(
                                            residency[s]) /
                            static_cast<double>(total)
                              : 0.0);
    }
    std::printf("domain state changes: %" PRIu64 "\n", transitions);
    return 0;
}

/**
 * Export the epochs of a trace in the run-trace CSV schema
 * (sim::writeRunTraceCsv): states are recovered from the per-CU
 * operating frequencies the frames recorded.
 */
int
cmdCsv(const std::string &path, std::ostream &os)
{
    const trace::TraceData data = loadOrDie(path);
    const dvfs::DomainMap domains(data.meta.numCus,
                                  data.meta.cusPerDomain);
    sim::RunResult synth;
    for (const trace::EpochFrame &f : data.frames) {
        sim::EpochTraceEntry entry;
        entry.start = f.start;
        for (std::uint32_t d = 0; d < domains.numDomains(); ++d) {
            const Freq freq =
                f.record.cus[domains.firstCu(d)].freq;
            const int state = stateOf(data.meta, freq);
            if (state < 0) {
                fatal("frame frequency " +
                      std::to_string(freq / freqMHz) +
                      " MHz is not a V/f table state");
            }
            entry.domainState.push_back(
                static_cast<std::uint8_t>(state));
            entry.domainCommitted.push_back(dvfs::sumOverDomain(
                domains, d, [&](std::uint32_t cu) {
                    return static_cast<double>(
                        f.record.cus[cu].committed);
                }));
        }
        synth.trace.push_back(std::move(entry));
    }
    sim::writeRunTraceCsv(os, synth,
                          trace::vfTableFromMeta(data.meta));
    return 0;
}

int
cmdDiff(const std::string &path_a, const std::string &path_b)
{
    const trace::TraceData a = loadOrDie(path_a);
    const trace::TraceData b = loadOrDie(path_b);
    std::uint64_t diffs = 0;
    auto report = [&](const std::string &what) {
        if (diffs < 20)
            std::printf("  %s\n", what.c_str());
        ++diffs;
    };
    if (a.meta.workload != b.meta.workload) {
        report("workload: " + a.meta.workload + " vs " +
               b.meta.workload);
    }
    if (a.meta.controller != b.meta.controller) {
        report("controller: " + a.meta.controller + " vs " +
               b.meta.controller);
    }
    if (a.meta.numCus != b.meta.numCus ||
        a.meta.cusPerDomain != b.meta.cusPerDomain ||
        a.meta.epochLen != b.meta.epochLen) {
        report("geometry/epoch configuration differs");
    }
    if (a.frames.size() != b.frames.size()) {
        report("epoch count: " + std::to_string(a.frames.size()) +
               " vs " + std::to_string(b.frames.size()));
    }
    const std::size_t frames =
        std::min(a.frames.size(), b.frames.size());
    for (std::size_t i = 0; i < frames; ++i) {
        const trace::EpochFrame &fa = a.frames[i];
        const trace::EpochFrame &fb = b.frames[i];
        if (fa.record.totalCommitted() != fb.record.totalCommitted()) {
            report("epoch " + std::to_string(i) + ": committed " +
                   std::to_string(fa.record.totalCommitted()) +
                   " vs " +
                   std::to_string(fb.record.totalCommitted()));
        }
        const std::size_t nd =
            std::min(fa.decisions.size(), fb.decisions.size());
        if (fa.decisions.size() != fb.decisions.size()) {
            report("epoch " + std::to_string(i) +
                   ": decision counts differ");
        }
        for (std::size_t d = 0; d < nd; ++d) {
            if (fa.decisions[d].decided != fb.decisions[d].decided ||
                fa.decisions[d].applied != fb.decisions[d].applied) {
                report("epoch " + std::to_string(i) + " domain " +
                       std::to_string(d) + ": state " +
                       std::to_string(fa.decisions[d].decided) + "/" +
                       std::to_string(fa.decisions[d].applied) +
                       " vs " +
                       std::to_string(fb.decisions[d].decided) + "/" +
                       std::to_string(fb.decisions[d].applied));
            }
        }
    }
    if (a.trailer.totalCommitted != b.trailer.totalCommitted ||
        a.trailer.lastCommitTick != b.trailer.lastCommitTick) {
        report("trailer totals differ");
    }
    if (diffs == 0) {
        std::printf("traces match (%zu epochs)\n", a.frames.size());
        return 0;
    }
    if (diffs > 20)
        std::printf("  ... and %" PRIu64 " more\n", diffs - 20);
    std::printf("traces differ (%" PRIu64 " difference(s))\n", diffs);
    return 1;
}

int
cmdCapture(int argc, char **argv)
{
    CliOptions cli(argc, argv);
    const std::string out = cli.get("out", "");
    const std::string design =
        cli.get("controller", cli.get("design", "PCSTALL"));
    if (out.empty()) {
        std::fprintf(stderr, "capture: --out <trace file> required\n");
        return 2;
    }
    bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    opts.traceOut = out;
    opts.replayTrace.clear();
    const std::string workload =
        cli.get("workload", opts.firstWorkload("comd"));

    const auto app = bench::makeApp(workload, opts);
    if (!app)
        return 1;
    const sim::RunConfig cfg = opts.runConfig();
    sim::ExperimentDriver driver(cfg);
    std::unique_ptr<dvfs::DvfsController> controller =
        bench::makeController(design, cfg);
    // Single run: the --out path is used verbatim (unlike the bench
    // harness's sweep captures, which suffix per run).
    const trace::TraceMeta meta = trace::makeTraceMeta(
        cfg, driver.table(), workload, *controller);
    trace::TraceWriter writer(out, meta);
    if (!writer.ok()) {
        std::fprintf(stderr, "capture: cannot write '%s'\n",
                     out.c_str());
        return 1;
    }
    trace::TraceCapture capture(writer);
    if (auto *pcstall = dynamic_cast<core::PcstallController *>(
            controller.get())) {
        capture.setSnapshotProvider([pcstall] {
            return trace::snapshotPcTables(pcstall->pcTables());
        });
    }
    const sim::RunResult r = driver.run(app, *controller, &capture);
    if (!writer.ok()) {
        std::fprintf(stderr, "capture: I/O error writing '%s'\n",
                     out.c_str());
        return 1;
    }
    std::printf("captured %zu epochs of %s under %s -> %s\n",
                r.epochs, workload.c_str(), controller->name().c_str(),
                out.c_str());
    return 0;
}

int
cmdReplay(const std::string &path, int argc, char **argv)
{
    CliOptions cli(argc, argv);
    const trace::TraceData data = loadOrDie(path);
    const std::string design =
        cli.get("controller", data.meta.controller);
    const bool verify =
        !cli.has("no-verify") && design == data.meta.controller;
    const bool quiet = cli.has("quiet");

    ReplayController rc = makeReplayController(data.meta, design);
    trace::ReplayDriver replayer(data);
    trace::ReplayOptions ropts;
    ropts.verifyDecisions = verify;
    const trace::ReplayOutcome outcome = replayer.run(*rc.use, ropts);
    if (!outcome.ok())
        fatal(outcome.error);

    const sim::RunResult &r = outcome.result;
    if (!quiet) {
        std::printf("replayed %zu epochs of %s under %s\n", r.epochs,
                    r.workload.c_str(), r.controller.c_str());
        std::printf("  energy:        %.6f J\n", r.energy);
        std::printf("  exec time:     %.3f us\n", r.seconds() * 1e6);
        std::printf("  instructions:  %" PRIu64 "\n", r.instructions);
        std::printf("  accuracy:      %.4f\n", r.predictionAccuracy);
        std::printf("  transitions:   %" PRIu64 "\n", r.transitions);
        std::printf("  ed2p:          %.6e\n", r.ed2p());
        if (outcome.captureWallMs > 0.0) {
            std::printf("  wall clock:    %.2f ms replay vs %.2f ms "
                        "live (%.1fx speedup)\n",
                        outcome.replayWallMs, outcome.captureWallMs,
                        outcome.speedup());
        }
    }

    const std::string csv_out = cli.get("csv-out", "");
    if (!csv_out.empty()) {
        if (!sim::writeRunTraceCsvFile(
                csv_out, r, trace::vfTableFromMeta(data.meta))) {
            fatal("cannot write '" + csv_out + "'");
        }
    }
    const std::string snap_out = cli.get("pc-snapshot-out", "");
    if (!snap_out.empty()) {
        auto *pcstall = dynamic_cast<core::PcstallController *>(
            rc.inner.get());
        if (pcstall == nullptr) {
            warn("--pc-snapshot-out: " + design +
                 " has no PC table; nothing written");
        } else if (!trace::writePcSnapshotFile(
                       snap_out, trace::snapshotPcTables(
                                     pcstall->pcTables()))) {
            fatal("cannot write '" + snap_out + "'");
        }
    }

    if (verify) {
        if (outcome.decisionMismatches == 0) {
            std::printf("replay deterministic: every decision matches "
                        "the captured run\n");
        } else {
            std::printf("replay NOT deterministic: %" PRIu64
                        " mismatch(es); first: %s\n",
                        outcome.decisionMismatches,
                        outcome.firstMismatch.c_str());
            return 1;
        }
    }

    // --threads N: re-drive the trace N times concurrently on fresh
    // controllers and require every outcome to be bit-identical to
    // the serial replay above - a thread-safety/determinism self-test
    // of the replay path.
    const unsigned threads = static_cast<unsigned>(
        std::strtoul(cli.get("threads", "1").c_str(), nullptr, 10));
    if (threads > 1) {
        sim::ParallelExecutor pool(threads);
        std::vector<trace::ReplayOutcome> outs(threads);
        pool.forEach(threads, [&](std::size_t i) {
            ReplayController c = makeReplayController(data.meta, design);
            trace::ReplayDriver rd(data);
            outs[i] = rd.run(*c.use, ropts);
        });
        unsigned diverged = 0;
        for (const trace::ReplayOutcome &o : outs) {
            const sim::RunResult &s = o.result;
            if (!o.ok() || s.epochs != r.epochs ||
                s.execTime != r.execTime || s.energy != r.energy ||
                s.instructions != r.instructions ||
                s.predictionAccuracy != r.predictionAccuracy ||
                s.transitions != r.transitions ||
                o.decisionMismatches != outcome.decisionMismatches)
                ++diverged;
        }
        if (diverged != 0) {
            std::printf("parallel replay NOT deterministic: %u of %u "
                        "concurrent replays diverged from the serial "
                        "outcome\n",
                        diverged, threads);
            return 1;
        }
        if (!quiet) {
            std::printf("parallel replay deterministic: %u concurrent "
                        "replays bit-identical to the serial run\n",
                        threads);
        }
    }
    return 0;
}

/**
 * Replay a trace with the metrics registry armed and print the merged
 * snapshot - the quickest way to read a captured run's PC-table hit
 * rate, replay statistics and quantization-error distribution without
 * re-simulating. --out additionally writes the snapshot through the
 * standard exporters (JSON, or Prometheus text for .prom/.txt).
 */
int
cmdMetrics(const std::string &path, int argc, char **argv)
{
    CliOptions cli(argc, argv);
    const trace::TraceData data = loadOrDie(path);
    const std::string design =
        cli.get("controller", data.meta.controller);

    // Arm the registry; the --out file (when given) is flushed by
    // guardedMain through writeObservabilityOutputs.
    bench::BenchOptions obs_opts;
    obs_opts.metricsOut = cli.get("out", "");
    bench::configureObservability(obs_opts);
    obs::setMetricsEnabled(true);

    ReplayController rc = makeReplayController(data.meta, design);
    trace::ReplayDriver replayer(data);
    trace::ReplayOptions ropts;
    ropts.verifyDecisions = design == data.meta.controller;
    const trace::ReplayOutcome outcome = replayer.run(*rc.use, ropts);
    if (!outcome.ok())
        fatal(outcome.error);
    if (auto *pcstall = dynamic_cast<core::PcstallController *>(
            rc.inner.get())) {
        bench::publishPcTableMetrics(*pcstall);
    }

    const obs::MetricsSnapshot snap = obs::collectedSnapshot();
    std::printf("replayed %zu epochs of %s under %s\n",
                outcome.result.epochs, data.meta.workload.c_str(),
                outcome.result.controller.c_str());

    std::printf("\ncounters:\n");
    for (const auto &[name, value] : snap.counters)
        std::printf("  %-28s %" PRIu64 "\n", name.c_str(), value);
    if (!snap.gauges.empty()) {
        std::printf("\ngauges:\n");
        for (const auto &[name, value] : snap.gauges)
            std::printf("  %-28s %g\n", name.c_str(), value);
    }
    if (!snap.histograms.empty()) {
        std::printf("\nhistograms:\n");
        for (const auto &[name, hist] : snap.histograms) {
            std::printf("  %-28s n=%" PRIu64
                        " p50=%.4g p95=%.4g p99=%.4g max=%.4g\n",
                        name.c_str(), hist.count,
                        hist.percentile(0.50), hist.percentile(0.95),
                        hist.percentile(0.99), hist.max);
        }
    }

    const auto counter = [&](const char *name) -> std::uint64_t {
        const auto it = snap.counters.find(name);
        return it == snap.counters.end() ? 0 : it->second;
    };
    const std::uint64_t lookups = counter("pc_table.lookups");
    if (lookups > 0) {
        std::printf("\npc-table hit rate: %.2f%% (%" PRIu64 " of %"
                    PRIu64 " lookups)\n",
                    100.0 * static_cast<double>(
                                counter("pc_table.hits")) /
                        static_cast<double>(lookups),
                    counter("pc_table.hits"), lookups);
    }
    return 0;
}

/** Split a sidecar key text on the library's unit separator. */
std::vector<std::string>
splitKeyText(const std::string &text)
{
    std::vector<std::string> fields;
    std::string cur;
    for (const char c : text) {
        if (c == '\x1f') {
            fields.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    fields.push_back(cur);
    return fields;
}

/**
 * Inspect a --trace-cache replay library (docs/replay_studies.md).
 *
 * `list` prints one row per published entry straight from the sidecar
 * texts - no trace is decoded, so it is safe and fast on any library.
 * `verify` additionally decodes every trace and quarantines the ones
 * that fail, mirroring what a sweep's capture-on-miss self-heal would
 * do lazily. `gc` collects the unusable leftovers a crash can leave
 * behind (orphan traces, dangling sidecars, staging temps).
 */
int
cmdLibrary(const std::string &dir, const std::string &sub)
{
    namespace fs = std::filesystem;
    trace::TraceLibrary lib(dir);
    if (!lib.ok())
        fatal(lib.error());

    if (sub == "gc") {
        const std::size_t removed = lib.gcOrphans();
        std::printf("library %s: removed %zu orphan file(s), %zu "
                    "entr%s remain\n",
                    lib.dir().c_str(), removed, lib.entryCount(),
                    lib.entryCount() == 1 ? "y" : "ies");
        return 0;
    }

    const std::vector<trace::TraceLibrary::Entry> entries =
        lib.entries();
    if (sub == "list") {
        std::printf("%-32s %10s %-12s %-24s %-4s %s\n", "digest",
                    "bytes", "workload", "design", "run",
                    "fingerprint");
        for (const trace::TraceLibrary::Entry &e : entries) {
            // Key text layout (library.cc): version, harness,
            // workload, workload digest, design, run index,
            // fingerprint, PC snapshot path.
            const std::vector<std::string> f =
                splitKeyText(e.keyText);
            const bool parsed = f.size() == 8;
            std::printf("%-32s %10ju %-12s %-24s %-4s %s\n",
                        e.digest.c_str(), e.bytes,
                        parsed ? f[2].c_str() : "(orphan)",
                        parsed ? f[4].c_str() : "-",
                        parsed ? f[5].c_str() : "-",
                        parsed ? f[6].c_str() : "-");
        }
        std::printf("%zu entr%s, %zu quarantined\n", entries.size(),
                    entries.size() == 1 ? "y" : "ies",
                    lib.quarantinedCount());
        return 0;
    }

    if (sub == "verify") {
        std::size_t bad = 0;
        for (const trace::TraceLibrary::Entry &e : entries) {
            const fs::path trace_path =
                fs::path(lib.dir()) / (e.digest + ".pctrace");
            const trace::TraceReadResult read =
                trace::readTraceFile(trace_path.string());
            if (read.ok()) {
                std::printf("ok      %s (%" PRIu64 " epochs)\n",
                            e.digest.c_str(),
                            read.trace->trailer.frameCount);
                continue;
            }
            ++bad;
            std::printf("CORRUPT %s: %s\n", e.digest.c_str(),
                        read.error.c_str());
            // Same quarantine discipline as the sweep path: move both
            // files aside (pid-suffixed) so the next sweep recaptures.
            const fs::path pen = fs::path(lib.dir()) / ".corrupt";
            std::error_code ec;
            fs::create_directories(pen, ec);
            const std::string pid = std::to_string(::getpid());
            for (const char *ext : {".pctrace", ".pckey"}) {
                const fs::path from =
                    fs::path(lib.dir()) / (e.digest + ext);
                fs::rename(from,
                           pen / (e.digest + ext + "." + pid), ec);
                if (ec)
                    fs::remove(from, ec);
            }
        }
        std::printf("%zu entr%s verified, %zu quarantined now\n",
                    entries.size(), entries.size() == 1 ? "y" : "ies",
                    bad);
        return bad == 0 ? 0 : 1;
    }

    std::fprintf(stderr,
                 "library: unknown subcommand '%s' "
                 "(expected list, verify or gc)\n",
                 sub.c_str());
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&]() -> int {
        if (argc < 2)
            return usage();
        const std::string cmd = argv[1];
        if (cmd == "header" && argc >= 3)
            return cmdHeader(argv[2]);
        if (cmd == "stats" && argc >= 3)
            return cmdStats(argv[2]);
        if (cmd == "csv" && argc >= 3)
            return cmdCsv(argv[2], std::cout);
        if (cmd == "diff" && argc >= 4)
            return cmdDiff(argv[2], argv[3]);
        if (cmd == "capture")
            return cmdCapture(argc - 1, argv + 1);
        if (cmd == "replay" && argc >= 3)
            return cmdReplay(argv[2], argc - 2, argv + 2);
        if (cmd == "metrics" && argc >= 3)
            return cmdMetrics(argv[2], argc - 2, argv + 2);
        if (cmd == "library" && argc >= 3)
            return cmdLibrary(argv[2], argc >= 4 ? argv[3] : "list");
        return usage();
    });
}
