/**
 * @file
 * dvfs_explain: decision-provenance inspector (docs/provenance.md).
 *
 *   dvfs_explain explain <file> [--epoch N] [--limit N] [--worst N]
 *                                        per-epoch "why this
 *                                        frequency" explanations
 *   dvfs_explain summary <file>          regret rollup, hit rates,
 *                                        per-state residency
 *                                        attribution, per-PC
 *                                        prediction-error breakdown
 *   dvfs_explain cdf     <file>          relative-oracle-regret CDF
 *   dvfs_explain csv     <file> [--out F] per-(epoch, domain) CSV
 *   dvfs_explain json    <file> [--out F] full JSON dump
 *   dvfs_explain verify  <pcpv> <trace>  re-derive the trace's
 *                                        provenance and byte-compare
 *                                        it against the sidecar
 *
 * <file> is either a PCPV provenance sidecar (--provenance-out) or a
 * PCTR epoch trace: a trace is replayed through trace::ReplayDriver
 * with a provenance sink armed, re-deriving the identical record
 * stream the live run would have produced (the property `verify`
 * checks bit-for-bit). Exit status: 0 on success / sidecar matches,
 * 1 otherwise.
 */

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "dvfs/hierarchical.hh"
#include "harness.hh"
#include "obs/provenance.hh"
#include "store/atomic_file.hh"
#include "trace/format.hh"
#include "trace/replay.hh"

using namespace pcstall;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dvfs_explain <command> <file> [options]\n"
        "  explain <file> [--epoch N] [--limit N] [--worst N]\n"
        "                             per-epoch decision explanations\n"
        "                             (default: first 20; --worst N\n"
        "                             ranks by oracle regret)\n"
        "  summary <file>             regret rollup, hit rates,\n"
        "                             residency and per-PC breakdown\n"
        "  cdf     <file>             relative oracle-regret CDF\n"
        "  csv     <file> [--out F]   per-(epoch, domain) CSV export\n"
        "  json    <file> [--out F]   full JSON dump\n"
        "  verify  <pcpv> <trace> [--controller C]\n"
        "                             re-derive provenance from the\n"
        "                             trace, byte-compare vs sidecar\n"
        "<file> may be a PCPV sidecar or a PCTR epoch trace (the\n"
        "trace is replayed to re-derive its provenance).\n");
    return 2;
}

/** True when @p path starts with the 4-byte PCPV magic. */
bool
isProvenanceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    char magic[4] = {};
    in.read(magic, 4);
    return in.gcount() == 4 && std::memcmp(magic, "PCPV", 4) == 0;
}

/**
 * Re-derive a trace's provenance: rebuild the captured controller
 * (same reconstruction rules as `trace_inspect replay`, including the
 * recorded power-cap wrapper for "NAME+CAP" designs), replay the
 * trace with a provenance sink armed, and return the log. Identical
 * bytes to the live run's sidecar - the contract `verify` and
 * tests/test_provenance.cc pin down.
 */
obs::ProvenanceLog
deriveFromTrace(const std::string &path, std::string design)
{
    trace::TraceReadResult read = trace::readTraceFile(path);
    if (!read.ok())
        fatal(read.error);
    const trace::TraceData &data = *read.trace;
    if (design.empty())
        design = data.meta.controller;

    bool capped = data.meta.hierarchical.enabled;
    if (design.size() > 4 &&
        design.substr(design.size() - 4) == "+CAP") {
        design = design.substr(0, design.size() - 4);
    } else if (design != data.meta.controller) {
        capped = false;
    }
    const sim::RunConfig cfg = trace::runConfigFromMeta(data.meta);
    std::unique_ptr<dvfs::DvfsController> inner =
        bench::makeController(design, cfg);
    dvfs::DvfsController *use = inner.get();
    std::unique_ptr<dvfs::HierarchicalPowerManager> wrapper;
    if (capped) {
        dvfs::HierarchicalConfig hier;
        hier.powerCap = data.meta.hierarchical.powerCap;
        hier.reviewEpochs = data.meta.hierarchical.reviewEpochs;
        hier.widenBelow = data.meta.hierarchical.widenBelow;
        wrapper = std::make_unique<dvfs::HierarchicalPowerManager>(
            *inner, hier);
        use = wrapper.get();
    }

    obs::ProvenanceLog log;
    trace::ReplayDriver replayer(data);
    trace::ReplayOptions ropts;
    ropts.verifyDecisions = false;
    ropts.auditRegret = true;
    ropts.provenance = &log;
    const trace::ReplayOutcome outcome = replayer.run(*use, ropts);
    if (!outcome.ok())
        fatal(outcome.error);
    return log;
}

/** Load @p path as provenance: PCPV directly, PCTR via replay. */
obs::ProvenanceLog
loadLog(const std::string &path, const std::string &design)
{
    if (isProvenanceFile(path)) {
        obs::ProvenanceReadResult read =
            obs::readProvenanceFile(path);
        if (!read.ok())
            fatal(path + ": " + read.error);
        return std::move(*read.log);
    }
    return deriveFromTrace(path, design);
}

std::string
freqStr(const obs::ProvenanceMeta &meta, std::size_t state)
{
    if (state >= meta.stateFreqMhz.size())
        return "state " + std::to_string(state);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f GHz",
                  static_cast<double>(meta.stateFreqMhz[state]) /
                      1000.0);
    return buf;
}

void
printRecord(const obs::ProvenanceMeta &meta,
            const obs::DecisionRecord &rec)
{
    const double t_us = static_cast<double>(rec.start) /
        static_cast<double>(tickUs);
    std::printf("epoch %" PRIu64 " @ %.3fus%s:", rec.epoch, t_us,
                rec.fallbackActive ? " [fallback]" : "");
    if (rec.realized) {
        std::printf(" regret %+.2f%% vs oracle, %+.2f%% vs static\n",
                    100.0 * rec.oracleRegretRel(),
                    100.0 * rec.staticRegretRel());
    } else {
        std::printf(" (unrealized: the decided epoch never"
                    " completed)\n");
    }
    for (std::size_t d = 0; d < rec.domains.size(); ++d) {
        const obs::DomainDecisionProv &dom = rec.domains[d];
        std::printf("  domain %zu: ", d);
        if (dom.pcKey != 0 || dom.lookups > 0) {
            std::printf("PC 0x%" PRIx64 " %s %u/%u", dom.pcKey,
                        dom.hits == dom.lookups && dom.lookups > 0
                            ? "hit" : "hits",
                        dom.hits, dom.lookups);
            if (dom.sameRegion > 0)
                std::printf(" (+%u same-region)", dom.sameRegion);
            if (dom.reactive > 0)
                std::printf(" (%u reactive)", dom.reactive);
            std::printf(", sens %.3f", dom.predictedSens);
        } else {
            std::printf("no table lookup (stall %" PRIu64
                        " ticks, %" PRIu64 " mem acc)",
                        dom.loadStallTicks, dom.memAccesses);
        }
        std::printf(", chose %s",
                    freqStr(meta, dom.chosenState).c_str());
        if (dom.appliedState != dom.chosenState) {
            std::printf(" (applied %s)",
                        freqStr(meta, dom.appliedState).c_str());
        }
        if (rec.realized) {
            std::printf(", best %s",
                        freqStr(meta, dom.bestState).c_str());
            if (dom.predictedInstr >= 0.0) {
                std::printf(", predicted %.0f instr got %" PRIu64,
                            dom.predictedInstr, dom.realizedInstr);
            } else {
                std::printf(", got %" PRIu64 " instr",
                            dom.realizedInstr);
            }
        }
        std::printf("\n");
    }
}

int
cmdExplain(const obs::ProvenanceLog &log, const CliOptions &cli)
{
    if (cli.has("epoch")) {
        const std::uint64_t want = static_cast<std::uint64_t>(
            cli.getInt("epoch", 0));
        for (const obs::DecisionRecord &rec : log.records) {
            if (rec.epoch == want) {
                printRecord(log.meta, rec);
                return 0;
            }
        }
        std::fprintf(stderr,
                     "epoch %" PRIu64 " has no decision record "
                     "(%zu recorded)\n",
                     want, log.records.size());
        return 1;
    }
    if (cli.has("worst")) {
        const std::size_t n = static_cast<std::size_t>(
            std::max<std::int64_t>(1, cli.getInt("worst", 10)));
        // Rank realized decisions by relative oracle regret; ties
        // break on epoch so the listing is deterministic.
        std::vector<const obs::DecisionRecord *> ranked;
        for (const obs::DecisionRecord &rec : log.records) {
            if (rec.realized)
                ranked.push_back(&rec);
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const obs::DecisionRecord *a,
                     const obs::DecisionRecord *b) {
                      const double ra = a->oracleRegretRel();
                      const double rb = b->oracleRegretRel();
                      if (ra != rb)
                          return ra > rb;
                      return a->epoch < b->epoch;
                  });
        if (ranked.size() > n)
            ranked.resize(n);
        std::printf("%zu highest-regret decisions of %s under %s:\n",
                    ranked.size(), log.meta.workload.c_str(),
                    log.meta.controller.c_str());
        for (const obs::DecisionRecord *rec : ranked)
            printRecord(log.meta, *rec);
        return 0;
    }
    const std::size_t limit = static_cast<std::size_t>(
        std::max<std::int64_t>(1, cli.getInt("limit", 20)));
    for (std::size_t i = 0; i < log.records.size() && i < limit; ++i)
        printRecord(log.meta, log.records[i]);
    if (log.records.size() > limit) {
        std::printf("... and %zu more (use --limit, --worst or "
                    "--epoch)\n",
                    log.records.size() - limit);
    }
    return 0;
}

int
cmdSummary(const obs::ProvenanceLog &log)
{
    const obs::ProvenanceMeta &meta = log.meta;
    std::printf("workload:    %s\n", meta.workload.c_str());
    std::printf("controller:  %s\n", meta.controller.c_str());
    std::printf("objective:   %s\n", meta.objective.c_str());
    std::printf("geometry:    %u domain(s), %u V/f states, nominal "
                "%s\n",
                meta.numDomains, meta.numStates,
                freqStr(meta, meta.nominalState).c_str());
    std::printf("epoch len:   %.3f us\n",
                static_cast<double>(meta.epochLen) /
                    static_cast<double>(tickUs));

    std::size_t realized = 0;
    std::size_t fallback = 0;
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t same_region = 0;
    std::uint64_t reactive = 0;
    for (const obs::DecisionRecord &rec : log.records) {
        realized += rec.realized ? 1 : 0;
        fallback += rec.fallbackActive ? 1 : 0;
        for (const obs::DomainDecisionProv &dom : rec.domains) {
            lookups += dom.lookups;
            hits += dom.hits;
            same_region += dom.sameRegion;
            reactive += dom.reactive;
        }
    }
    std::printf("decisions:   %zu recorded, %zu realized, %zu under "
                "fallback\n",
                log.records.size(), realized, fallback);
    if (lookups > 0) {
        std::printf("pc table:    %" PRIu64 " lookups, %.1f%% hit "
                    "(%" PRIu64 " same-region, %" PRIu64
                    " reactive)\n",
                    lookups,
                    100.0 * static_cast<double>(hits) /
                        static_cast<double>(lookups),
                    same_region, reactive);
    }
    const obs::RegretSummary &reg = log.regret;
    if (!reg.empty()) {
        std::printf("regret:      mean %+.3f%% / p95 %.3f%% / max "
                    "%.3f%% vs oracle; mean %+.3f%% vs static "
                    "(%" PRIu64 " decisions)\n",
                    100.0 * reg.meanOracle(),
                    100.0 * reg.percentile(0.95),
                    100.0 * reg.oracleMax, 100.0 * reg.meanStatic(),
                    reg.count);
    }

    // Per-state residency attribution over realized domain-epochs:
    // how often each state was chosen, how often it was the oracle's
    // pick, and the mean regret borne while running there.
    struct StateRow
    {
        std::uint64_t chosen = 0;
        std::uint64_t applied = 0;
        std::uint64_t best = 0;
        double regretSum = 0.0;
    };
    std::vector<StateRow> states(meta.numStates);
    std::uint64_t domain_epochs = 0;
    for (const obs::DecisionRecord &rec : log.records) {
        if (!rec.realized)
            continue;
        for (const obs::DomainDecisionProv &dom : rec.domains) {
            if (dom.chosenState >= states.size() ||
                dom.appliedState >= states.size() ||
                dom.bestState >= states.size())
                continue;
            ++domain_epochs;
            ++states[dom.chosenState].chosen;
            ++states[dom.appliedState].applied;
            ++states[dom.bestState].best;
            states[dom.appliedState].regretSum +=
                rec.oracleRegretRel();
        }
    }
    if (domain_epochs > 0) {
        std::printf("\nper-state residency attribution "
                    "(%% of realized domain-epochs):\n");
        std::printf("  %-10s %8s %8s %8s %12s\n", "state", "chosen",
                    "applied", "oracle", "mean_regret");
        for (std::size_t s = 0; s < states.size(); ++s) {
            const StateRow &row = states[s];
            if (row.chosen == 0 && row.applied == 0 && row.best == 0)
                continue;
            const double denom =
                static_cast<double>(domain_epochs);
            std::printf("  %-10s %7.1f%% %7.1f%% %7.1f%% %11.3f%%\n",
                        freqStr(meta, s).c_str(),
                        100.0 * static_cast<double>(row.chosen) /
                            denom,
                        100.0 * static_cast<double>(row.applied) /
                            denom,
                        100.0 * static_cast<double>(row.best) /
                            denom,
                        row.applied > 0
                            ? 100.0 * row.regretSum /
                                static_cast<double>(row.applied)
                            : 0.0);
        }
    }

    // Per-PC prediction-error breakdown: which table keys mispredict.
    struct PcRow
    {
        std::uint64_t decisions = 0;
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t predicted = 0;
        double errSum = 0.0;
        double regretSum = 0.0;
    };
    std::map<std::uint64_t, PcRow> by_pc;
    for (const obs::DecisionRecord &rec : log.records) {
        for (const obs::DomainDecisionProv &dom : rec.domains) {
            if (dom.pcKey == 0)
                continue;
            PcRow &row = by_pc[dom.pcKey];
            ++row.decisions;
            row.lookups += dom.lookups;
            row.hits += dom.hits;
            if (rec.realized) {
                row.regretSum += rec.oracleRegretRel();
                if (dom.predictedInstr >= 0.0 &&
                    dom.realizedInstr > 0) {
                    ++row.predicted;
                    row.errSum +=
                        std::fabs(dom.predictedInstr -
                                  static_cast<double>(
                                      dom.realizedInstr)) /
                        static_cast<double>(dom.realizedInstr);
                }
            }
        }
    }
    if (!by_pc.empty()) {
        std::vector<std::pair<std::uint64_t, PcRow>> ranked(
            by_pc.begin(), by_pc.end());
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &a, const auto &b) {
                      if (a.second.decisions != b.second.decisions)
                          return a.second.decisions >
                              b.second.decisions;
                      return a.first < b.first;
                  });
        const std::size_t show = std::min<std::size_t>(
            ranked.size(), 10);
        std::printf("\nper-PC prediction error (top %zu of %zu "
                    "keys):\n",
                    show, ranked.size());
        std::printf("  %-18s %8s %8s %12s %12s\n", "pc", "epochs",
                    "hit%", "mean_err", "mean_regret");
        for (std::size_t i = 0; i < show; ++i) {
            const PcRow &row = ranked[i].second;
            char pc[24];
            std::snprintf(pc, sizeof(pc), "0x%" PRIx64,
                          ranked[i].first);
            std::printf(
                "  %-18s %8" PRIu64 " %7.1f%% %11.2f%% %11.3f%%\n",
                pc, row.decisions,
                row.lookups > 0
                    ? 100.0 * static_cast<double>(row.hits) /
                        static_cast<double>(row.lookups)
                    : 0.0,
                row.predicted > 0
                    ? 100.0 * row.errSum /
                        static_cast<double>(row.predicted)
                    : 0.0,
                row.decisions > 0
                    ? 100.0 * row.regretSum /
                        static_cast<double>(row.decisions)
                    : 0.0);
        }
    }
    return 0;
}

int
cmdCdf(const obs::ProvenanceLog &log)
{
    std::vector<double> regrets;
    for (const obs::DecisionRecord &rec : log.records) {
        if (rec.realized)
            regrets.push_back(rec.oracleRegretRel());
    }
    if (regrets.empty()) {
        std::printf("no realized decisions\n");
        return 0;
    }
    std::sort(regrets.begin(), regrets.end());
    std::printf("relative oracle regret CDF (%zu decisions):\n",
                regrets.size());
    std::printf("  %-6s %12s\n", "pct", "regret");
    for (const int pct : {5,  10, 25, 50, 75, 90, 95, 99, 100}) {
        const std::size_t idx = std::min(
            regrets.size() - 1,
            static_cast<std::size_t>(
                static_cast<double>(pct) / 100.0 *
                static_cast<double>(regrets.size())));
        std::printf("  p%-5d %11.4f%%\n", pct, 100.0 * regrets[idx]);
    }
    return 0;
}

/** Print to stdout or atomically publish to --out. */
int
emitDocument(const std::string &doc, const CliOptions &cli)
{
    const std::string out = cli.get("out", "");
    if (out.empty()) {
        std::fwrite(doc.data(), 1, doc.size(), stdout);
        return 0;
    }
    const std::string err = store::writeFileAtomic(out, doc);
    if (!err.empty())
        fatal("--out: " + err);
    return 0;
}

int
cmdCsv(const obs::ProvenanceLog &log, const CliOptions &cli)
{
    std::string doc = "# pcstall-provenance-csv v1\n"
        "epoch,t_us,domain,fallback,realized,pc_key,lookups,hits,"
        "same_region,reactive,pred_sens,pred_level,pred_instr,"
        "elapsed_instr,load_stall_ticks,mem_accesses,chosen_state,"
        "applied_state,realized_instr,chosen_score,best_score,"
        "best_state,nominal_score,oracle_regret_rel,"
        "static_regret_rel\n";
    char buf[512];
    for (const obs::DecisionRecord &rec : log.records) {
        // The regret columns are record-level (chip sums), repeated
        // on every domain row of the epoch.
        const double oracle =
            rec.realized ? rec.oracleRegretRel() : 0.0;
        const double stat =
            rec.realized ? rec.staticRegretRel() : 0.0;
        for (std::size_t d = 0; d < rec.domains.size(); ++d) {
            const obs::DomainDecisionProv &dom = rec.domains[d];
            std::snprintf(
                buf, sizeof(buf),
                "%" PRIu64 ",%.3f,%zu,%d,%d,0x%" PRIx64
                ",%u,%u,%u,%u,%.6f,%.6f,%.6f,%" PRIu64 ",%" PRIu64
                ",%" PRIu64 ",%u,%u,%" PRIu64
                ",%.9g,%.9g,%u,%.9g,%.9g,%.9g\n",
                rec.epoch,
                static_cast<double>(rec.start) /
                    static_cast<double>(tickUs),
                d, rec.fallbackActive ? 1 : 0, rec.realized ? 1 : 0,
                dom.pcKey, dom.lookups, dom.hits, dom.sameRegion,
                dom.reactive, dom.predictedSens, dom.predictedLevel,
                dom.predictedInstr, dom.elapsedInstr,
                dom.loadStallTicks, dom.memAccesses,
                static_cast<unsigned>(dom.chosenState),
                static_cast<unsigned>(dom.appliedState),
                dom.realizedInstr, dom.chosenScore, dom.bestScore,
                static_cast<unsigned>(dom.bestState),
                dom.nominalScore, oracle, stat);
            doc += buf;
        }
    }
    return emitDocument(doc, cli);
}

std::string
jsonNumber(double value, const char *fmt = "%.9g")
{
    if (!std::isfinite(value))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, value);
    return buf;
}

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

int
cmdJson(const obs::ProvenanceLog &log, const CliOptions &cli)
{
    const obs::ProvenanceMeta &meta = log.meta;
    std::string doc = "{\n  \"schema\": \"pcstall-provenance-v1\",\n";
    doc += "  \"meta\": {\"workload\": " + jsonString(meta.workload) +
        ", \"controller\": " + jsonString(meta.controller) +
        ", \"objective\": " + jsonString(meta.objective) +
        ", \"epoch_len_ticks\": " + std::to_string(meta.epochLen) +
        ", \"domains\": " + std::to_string(meta.numDomains) +
        ", \"nominal_state\": " + std::to_string(meta.nominalState) +
        ", \"state_freq_mhz\": [";
    for (std::size_t s = 0; s < meta.stateFreqMhz.size(); ++s) {
        doc += (s != 0 ? ", " : "") +
            std::to_string(meta.stateFreqMhz[s]);
    }
    doc += "]},\n";
    const obs::RegretSummary &reg = log.regret;
    doc += "  \"regret\": {\"decisions\": " +
        std::to_string(reg.count) +
        ", \"mean_oracle\": " + jsonNumber(reg.meanOracle()) +
        ", \"p95_oracle\": " + jsonNumber(reg.percentile(0.95)) +
        ", \"max_oracle\": " + jsonNumber(reg.oracleMax) +
        ", \"mean_static\": " + jsonNumber(reg.meanStatic()) +
        "},\n  \"records\": [\n";
    for (std::size_t i = 0; i < log.records.size(); ++i) {
        const obs::DecisionRecord &rec = log.records[i];
        doc += "    {\"epoch\": " + std::to_string(rec.epoch) +
            ", \"start\": " + std::to_string(rec.start) +
            ", \"fallback\": " +
            (rec.fallbackActive ? "true" : "false") +
            ", \"realized\": " + (rec.realized ? "true" : "false");
        if (rec.realized) {
            doc += ", \"oracle_regret_rel\": " +
                jsonNumber(rec.oracleRegretRel()) +
                ", \"static_regret_rel\": " +
                jsonNumber(rec.staticRegretRel());
        }
        doc += ", \"domains\": [";
        for (std::size_t d = 0; d < rec.domains.size(); ++d) {
            const obs::DomainDecisionProv &dom = rec.domains[d];
            char pc[24];
            std::snprintf(pc, sizeof(pc), "0x%" PRIx64, dom.pcKey);
            doc += std::string(d != 0 ? ", " : "") +
                "{\"pc\": \"" + pc +
                "\", \"lookups\": " + std::to_string(dom.lookups) +
                ", \"hits\": " + std::to_string(dom.hits) +
                ", \"same_region\": " +
                std::to_string(dom.sameRegion) +
                ", \"reactive\": " + std::to_string(dom.reactive) +
                ", \"pred_sens\": " + jsonNumber(dom.predictedSens) +
                ", \"pred_level\": " +
                jsonNumber(dom.predictedLevel) +
                ", \"pred_instr\": " +
                jsonNumber(dom.predictedInstr) +
                ", \"elapsed_instr\": " +
                std::to_string(dom.elapsedInstr) +
                ", \"load_stall_ticks\": " +
                std::to_string(dom.loadStallTicks) +
                ", \"mem_accesses\": " +
                std::to_string(dom.memAccesses) +
                ", \"chosen_state\": " +
                std::to_string(dom.chosenState) +
                ", \"applied_state\": " +
                std::to_string(dom.appliedState);
            if (rec.realized) {
                doc += ", \"realized_instr\": " +
                    std::to_string(dom.realizedInstr) +
                    ", \"chosen_score\": " +
                    jsonNumber(dom.chosenScore) +
                    ", \"best_score\": " +
                    jsonNumber(dom.bestScore) +
                    ", \"best_state\": " +
                    std::to_string(dom.bestState) +
                    ", \"nominal_score\": " +
                    jsonNumber(dom.nominalScore);
            }
            doc += "}";
        }
        doc += "], \"state_scores\": [";
        for (std::size_t s = 0; s < rec.stateScores.size(); ++s) {
            doc += (s != 0 ? ", " : "") +
                jsonNumber(rec.stateScores[s]);
        }
        doc += "]}";
        doc += i + 1 != log.records.size() ? ",\n" : "\n";
    }
    doc += "  ]\n}\n";
    return emitDocument(doc, cli);
}

int
cmdVerify(const std::string &pcpv_path, const std::string &trace_path,
          const CliOptions &cli)
{
    std::ifstream in(pcpv_path, std::ios::binary);
    if (!in)
        fatal("cannot read '" + pcpv_path + "'");
    std::string sidecar((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    // Decode first: a corrupt sidecar should report *as* corrupt, not
    // as a mismatch against the re-derivation.
    obs::ProvenanceReadResult decoded = obs::decodeProvenance(sidecar);
    if (!decoded.ok())
        fatal(pcpv_path + ": " + decoded.error);

    const obs::ProvenanceLog derived =
        deriveFromTrace(trace_path, cli.get("controller", ""));
    const std::string rebuilt = obs::encodeProvenance(derived);
    if (rebuilt == sidecar) {
        std::printf("provenance verified: replay re-derives the "
                    "sidecar byte-for-byte (%zu records, %zu "
                    "bytes)\n",
                    derived.records.size(), sidecar.size());
        return 0;
    }
    std::printf("provenance MISMATCH: re-derived stream differs "
                "from the sidecar (%zu vs %zu bytes, %zu vs %zu "
                "records)\n",
                rebuilt.size(), sidecar.size(),
                derived.records.size(), decoded.log->records.size());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain([&]() -> int {
        if (argc < 3)
            return usage();
        const std::string cmd = argv[1];
        const std::string path = argv[2];
        CliOptions cli(argc - 2, argv + 2);
        if (cmd == "verify") {
            if (argc < 4)
                return usage();
            return cmdVerify(path, argv[3], cli);
        }
        if (cmd != "explain" && cmd != "summary" && cmd != "cdf" &&
            cmd != "csv" && cmd != "json")
            return usage();
        const obs::ProvenanceLog log =
            loadLog(path, cli.get("controller", ""));
        if (cmd == "explain")
            return cmdExplain(log, cli);
        if (cmd == "summary")
            return cmdSummary(log);
        if (cmd == "cdf")
            return cmdCdf(log);
        if (cmd == "csv")
            return cmdCsv(log, cli);
        return cmdJson(log, cli);
    });
}
